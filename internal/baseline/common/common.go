// Package common provides the shared substrate for the baseline distributed
// file systems reproduced from the paper's evaluation (IndexFS, CephFS,
// Gluster, Lustre).
//
// The baselines are modeled at the level the paper's experiments actually
// compare: *which servers a metadata operation must contact, in what order,
// and how much server-side software work each request costs*. Every baseline
// runs on the same KV + RPC substrate as LocoFS; what differs per system is
// the client-side routing (encoded in each baseline package) and a Profile
// of per-request service time calibrated from the paper's own single-node
// measurements (Fig 10).
package common

import (
	"fmt"
	"time"

	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// Generic metadata-server operations shared by all baselines.
const (
	OpGet wire.Op = 0x0400 + iota
	OpPut
	OpCreateX // exclusive create: fails with EEXIST
	OpDel
	OpExists
	OpListPrefix
	OpCountPrefix
	OpDelPrefix
)

// Profile models the software path of one baseline's metadata server. The
// service times are charged virtually per request (see rpc.Server's
// SetVirtualCost): they flow into every response's ServiceNS and into the
// server's cumulative Busy() time, from which experiments derive latency
// and server-bound throughput without wall-clock sleeping.
type Profile struct {
	// Name labels the system in experiment output.
	Name string
	// ReadService is the server-side processing time of a read request.
	ReadService time.Duration
	// WriteService is the server-side processing time of a mutation.
	WriteService time.Duration
	// Workers is the usable request parallelism of the metadata path
	// (journal-serialized designs get small values); experiments model
	// per-server capacity as Workers / service-time.
	Workers int
}

// Server is one generic baseline metadata server: a KV store behind the
// generic ops, with the profile's service time charged per request.
type Server struct {
	Store   kv.Store
	profile Profile
	RPC     *rpc.Server
}

// NewServer builds a generic server over store.
func NewServer(store kv.Store, profile Profile) *Server {
	s := &Server{Store: store, profile: profile, RPC: rpc.NewServer()}
	for _, op := range []wire.Op{OpPut, OpCreateX, OpDel, OpDelPrefix} {
		s.RPC.SetVirtualCost(op, profile.WriteService)
	}
	for _, op := range []wire.Op{OpGet, OpExists, OpListPrefix, OpCountPrefix} {
		s.RPC.SetVirtualCost(op, profile.ReadService)
	}
	// The calibrated profile is the whole service model; suppress wall-clock
	// measurement (meaningless under CPU contention).
	s.RPC.SetServiceFunc(func(op wire.Op, run func()) time.Duration {
		run()
		return 0
	})
	s.attach()
	return s
}

func (s *Server) attach() {
	s.RPC.Handle(OpGet, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		key := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		v, ok := s.Store.Get(key)
		if !ok {
			return wire.StatusNotFound, nil
		}
		return wire.StatusOK, wire.NewEnc().Blob(v).Bytes()
	})
	s.RPC.Handle(OpPut, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		key, val := d.Blob(), d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.Store.Put(key, val)
		return wire.StatusOK, nil
	})
	s.RPC.Handle(OpCreateX, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		key, val := d.Blob(), d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		if _, ok := s.Store.Get(key); ok {
			return wire.StatusExist, nil
		}
		s.Store.Put(key, val)
		return wire.StatusOK, nil
	})
	s.RPC.Handle(OpDel, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		key := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		if !s.Store.Delete(key) {
			return wire.StatusNotFound, nil
		}
		return wire.StatusOK, nil
	})
	s.RPC.Handle(OpExists, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		key := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		_, ok := s.Store.Get(key)
		return wire.StatusOK, wire.NewEnc().Bool(ok).Bytes()
	})
	s.RPC.Handle(OpListPrefix, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		prefix := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		names := s.scanPrefix(prefix)
		e := wire.NewEnc().U32(uint32(len(names)))
		for _, n := range names {
			e.Str(n)
		}
		return wire.StatusOK, e.Bytes()
	})
	s.RPC.Handle(OpCountPrefix, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		prefix := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		return wire.StatusOK, wire.NewEnc().U32(uint32(len(s.scanPrefix(prefix)))).Bytes()
	})
	s.RPC.Handle(OpDelPrefix, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		prefix := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		names := s.scanPrefix(prefix)
		for _, n := range names {
			s.Store.Delete(append(append([]byte(nil), prefix...), n...))
		}
		return wire.StatusOK, wire.NewEnc().U32(uint32(len(names))).Bytes()
	})
}

// scanPrefix returns the suffixes of keys beginning with prefix. An ordered
// store scans the range; a hash store must visit everything.
func (s *Server) scanPrefix(prefix []byte) []string {
	var names []string
	if o, ok := s.Store.(kv.Ordered); ok {
		o.AscendPrefix(prefix, func(k, v []byte) bool {
			names = append(names, string(k[len(prefix):]))
			return true
		})
		return names
	}
	s.Store.ForEach(func(k, v []byte) bool {
		if len(k) >= len(prefix) && string(k[:len(prefix)]) == string(prefix) {
			names = append(names, string(k[len(prefix):]))
		}
		return true
	})
	return names
}

// Cluster is a set of generic baseline servers on one fabric.
type Cluster struct {
	Profile Profile
	Servers []*Server
	Addrs   []string
	net     *netsim.Network
}

// StartCluster launches n servers named "<profile.Name>-<i>" on the fabric,
// each with a store built by mkStore.
func StartCluster(network *netsim.Network, n int, profile Profile, mkStore func() kv.Store) (*Cluster, error) {
	c := &Cluster{Profile: profile, net: network}
	for i := 0; i < n; i++ {
		srv := NewServer(mkStore(), profile)
		addr := fmt.Sprintf("%s-%d", profile.Name, i)
		l, err := network.Listen(addr)
		if err != nil {
			return nil, err
		}
		go srv.RPC.Serve(l)
		c.Servers = append(c.Servers, srv)
		c.Addrs = append(c.Addrs, addr)
	}
	return c, nil
}

// Close shuts down every server.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		s.RPC.Shutdown()
	}
}

// Conn is a client-side bundle of connections to every server of a cluster.
type Conn struct {
	Clients []*rpc.Client
}

// DialCluster connects to every server, installing link as the modeled
// network for virtual-time accounting.
func DialCluster(d netsim.Dialer, addrs []string, link netsim.LinkConfig) (*Conn, error) {
	c := &Conn{}
	for _, a := range addrs {
		cl, err := rpc.Dial(d, a)
		if err != nil {
			c.Close()
			return nil, err
		}
		cl.SetLink(link)
		c.Clients = append(c.Clients, cl)
	}
	return c, nil
}

// Cost sums the modeled time across all connections.
func (c *Conn) Cost() time.Duration {
	var d time.Duration
	for _, cl := range c.Clients {
		d += cl.VirtualTime()
	}
	return d
}

// Close closes every connection.
func (c *Conn) Close() error {
	for _, cl := range c.Clients {
		cl.Close()
	}
	return nil
}

// Trips sums round trips across all connections.
func (c *Conn) Trips() uint64 {
	var n uint64
	for _, cl := range c.Clients {
		n += cl.Trips()
	}
	return n
}

// N returns the number of servers.
func (c *Conn) N() int { return len(c.Clients) }

// Get fetches key from server i.
func (c *Conn) Get(i int, key []byte) ([]byte, wire.Status, error) {
	st, resp, err := c.Clients[i].Call(OpGet, wire.NewEnc().Blob(key).Bytes())
	if err != nil || st != wire.StatusOK {
		return nil, st, err
	}
	return wire.NewDec(resp).Blob(), st, nil
}

// Put stores key on server i.
func (c *Conn) Put(i int, key, val []byte) (wire.Status, error) {
	st, _, err := c.Clients[i].Call(OpPut, wire.NewEnc().Blob(key).Blob(val).Bytes())
	return st, err
}

// CreateX exclusively creates key on server i.
func (c *Conn) CreateX(i int, key, val []byte) (wire.Status, error) {
	st, _, err := c.Clients[i].Call(OpCreateX, wire.NewEnc().Blob(key).Blob(val).Bytes())
	return st, err
}

// Del deletes key on server i.
func (c *Conn) Del(i int, key []byte) (wire.Status, error) {
	st, _, err := c.Clients[i].Call(OpDel, wire.NewEnc().Blob(key).Bytes())
	return st, err
}

// Exists probes key on server i.
func (c *Conn) Exists(i int, key []byte) (bool, error) {
	st, resp, err := c.Clients[i].Call(OpExists, wire.NewEnc().Blob(key).Bytes())
	if err != nil {
		return false, err
	}
	if st != wire.StatusOK {
		return false, st.Err()
	}
	return wire.NewDec(resp).Bool(), nil
}

// CountPrefix counts keys with prefix on server i.
func (c *Conn) CountPrefix(i int, prefix []byte) (int, error) {
	st, resp, err := c.Clients[i].Call(OpCountPrefix, wire.NewEnc().Blob(prefix).Bytes())
	if err != nil {
		return 0, err
	}
	if st != wire.StatusOK {
		return 0, st.Err()
	}
	return int(wire.NewDec(resp).U32()), nil
}

// ListPrefix lists key suffixes with prefix on server i.
func (c *Conn) ListPrefix(i int, prefix []byte) ([]string, error) {
	st, resp, err := c.Clients[i].Call(OpListPrefix, wire.NewEnc().Blob(prefix).Bytes())
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	d := wire.NewDec(resp)
	n := d.U32()
	out := make([]string, 0, n)
	for j := uint32(0); j < n; j++ {
		out = append(out, d.Str())
	}
	return out, d.Err()
}

// DelPrefix deletes keys with prefix on server i, returning the count.
func (c *Conn) DelPrefix(i int, prefix []byte) (int, error) {
	st, resp, err := c.Clients[i].Call(OpDelPrefix, wire.NewEnc().Blob(prefix).Bytes())
	if err != nil {
		return 0, err
	}
	if st != wire.StatusOK {
		return 0, st.Err()
	}
	return int(wire.NewDec(resp).U32()), nil
}

// SubtreeKey returns the first depth components of a cleaned path, the
// granularity at which subtree-partitioned systems (CephFS, Lustre DNE1)
// spread the namespace over their servers.
func SubtreeKey(p string, depth int) string {
	if p == "/" || depth <= 0 {
		return "/"
	}
	idx := 0
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			depth--
			if depth == 0 {
				return p[:i]
			}
		}
		idx = i
	}
	_ = idx
	return p
}

// HashServer maps a string key onto one of n servers (FNV-1a + avalanche).
func HashServer(key string, n int) int {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return int(h % uint64(n))
}
