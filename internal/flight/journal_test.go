package flight

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"locofs/internal/telemetry"
)

func TestJournalAppendAssignsDenseSeqs(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 5; i++ {
		if got := j.Emit(KindRetry, "client", "stat", 7, int64(i), "fms-0"); got != uint64(i+1) {
			t.Fatalf("emit %d: seq = %d, want %d", i, got, i+1)
		}
	}
	if j.Seq() != 5 {
		t.Fatalf("Seq() = %d, want 5", j.Seq())
	}
	evs, next, reset := j.Since(0, 0)
	if len(evs) != 5 || next != 5 || reset {
		t.Fatalf("Since(0) = %d events, next %d, reset %v", len(evs), next, reset)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq = %d, want dense", i, ev.Seq)
		}
		if ev.TimeNS == 0 {
			t.Errorf("event %d: TimeNS not stamped", i)
		}
		if ev.Kind != KindRetry || ev.Source != "client" || ev.Op != "stat" || ev.Trace != 7 {
			t.Errorf("event %d: fields not preserved: %+v", i, ev)
		}
	}
}

func TestJournalWraparound(t *testing.T) {
	const capacity = 8
	j := NewJournal(capacity)
	for i := 0; i < 20; i++ {
		j.Emit(KindLeaseRecall, "dms", "", 0, int64(i), "/d")
	}
	if got := j.Overwritten(); got != 20-capacity {
		t.Fatalf("Overwritten = %d, want %d", got, 20-capacity)
	}
	// A cold cursor must resync: reset=true, and only the newest capacity
	// events are retained, still dense and in order.
	evs, next, reset := j.Since(0, 0)
	if !reset {
		t.Fatal("Since(0) after wraparound: reset = false, want true")
	}
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	if evs[0].Seq != 20-capacity+1 || evs[len(evs)-1].Seq != 20 {
		t.Fatalf("retained range [%d, %d], want [%d, 20]", evs[0].Seq, evs[len(evs)-1].Seq, 20-capacity+1)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained seqs not dense at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if next != 20 {
		t.Fatalf("next = %d, want 20", next)
	}
	// A warm cursor inside the retained range pages without reset.
	evs, next, reset = j.Since(15, 2)
	if reset || len(evs) != 2 || evs[0].Seq != 16 || next != 17 {
		t.Fatalf("Since(15, 2) = %d events from %d, next %d, reset %v", len(evs), evs[0].Seq, next, reset)
	}
}

func TestJournalSinceCursorAheadResyncs(t *testing.T) {
	j := NewJournal(8)
	j.Emit(KindEpoch, "dms", "", 0, 1, "")
	// A cursor from before a restart (ahead of this journal) must reset and
	// land the consumer on the current tail, not loop forever.
	evs, next, reset := j.Since(100, 0)
	if !reset {
		t.Fatal("cursor ahead of journal: reset = false, want true")
	}
	if len(evs) != 1 || next != 1 {
		t.Fatalf("resync returned %d events, next %d; want 1 event, next 1", len(evs), next)
	}
}

func TestJournalConcurrentEmitWhileRead(t *testing.T) {
	j := NewJournal(64)
	const writers, perWriter = 4, 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Readers hammer every read path while writers append. Pages must stay
	// dense even as the ring wraps underneath them.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs, next, _ := j.Since(cursor, 32)
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq != evs[i-1].Seq+1 {
						t.Errorf("non-dense page: %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
				cursor = next
				j.Recent(8)
				j.KindCounts()
				j.CountKindSince(KindBreaker, 0)
				j.Overwritten()
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Emit(KindBreaker, "client", "", uint64(w), int64(i), "open")
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if j.Seq() != writers*perWriter {
		t.Fatalf("Seq = %d, want %d", j.Seq(), writers*perWriter)
	}
	if got := j.KindCounts()["breaker"]; got != writers*perWriter {
		t.Fatalf("KindCounts[breaker] = %d, want %d", got, writers*perWriter)
	}
}

func TestAppendZeroAlloc(t *testing.T) {
	j := NewJournal(256)
	ev := Event{Kind: KindRetry, Source: "client", Op: "stat", Trace: 1, Value: 2, Detail: "fms-0"}
	allocs := testing.AllocsPerRun(1000, func() {
		j.Append(ev)
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f objects per call, want 0", allocs)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if j.Emit(KindBreaker, "x", "", 0, 0, "") != 0 {
		t.Error("nil Emit returned nonzero seq")
	}
	if j.Seq() != 0 || j.Cap() != 0 || j.Overwritten() != 0 {
		t.Error("nil accessors returned nonzero")
	}
	if evs, _, _ := j.Since(0, 0); evs != nil {
		t.Error("nil Since returned events")
	}
	if j.Recent(5) != nil || j.KindCounts() != nil {
		t.Error("nil Recent/KindCounts returned data")
	}
	if j.CountKindSince(KindBreaker, 0) != 0 {
		t.Error("nil CountKindSince returned nonzero")
	}
	if j.Subscribe() != nil {
		t.Error("nil Subscribe returned a channel")
	}
	j.Unsubscribe(nil)
	j.SetNow(func() int64 { return 0 })
	j.RegisterMetrics(nil)
}

func TestJournalSubscribeCoalesces(t *testing.T) {
	j := NewJournal(16)
	ch := j.Subscribe()
	for i := 0; i < 10; i++ {
		j.Emit(KindRetry, "client", "", 0, 0, "")
	}
	// Ten appends coalesce into (at most) one pending wake-up.
	select {
	case <-ch:
	default:
		t.Fatal("no wake-up pending after appends")
	}
	select {
	case <-ch:
		t.Fatal("wake-ups not coalesced: second token pending")
	default:
	}
	j.Unsubscribe(ch)
	j.Emit(KindRetry, "client", "", 0, 0, "")
	select {
	case <-ch:
		t.Fatal("wake-up delivered after Unsubscribe")
	default:
	}
}

func TestEventMarshalJSON(t *testing.T) {
	ev := Event{Seq: 3, TimeNS: 42, Kind: KindBreaker, Source: "client", Trace: 0xdeadbeef, Detail: "fms-0 open"}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"kind":"breaker"`) {
		t.Errorf("kind not rendered as name: %s", s)
	}
	if !strings.Contains(s, `"trace":"0xdeadbeef"`) {
		t.Errorf("trace not rendered as hex: %s", s)
	}
}

func TestJournalRegisterMetrics(t *testing.T) {
	j := NewJournal(4)
	j.Emit(KindBreaker, "client", "", 0, 0, "open")
	j.Emit(KindBreaker, "client", "", 0, 0, "closed")
	for i := 0; i < 6; i++ {
		j.Emit(KindLeaseRecall, "dms", "", 0, int64(i), "/d")
	}
	reg := telemetry.NewRegistry()
	j.RegisterMetrics(reg)
	var breaker, overwritten float64
	for _, m := range reg.Snapshot().Metrics {
		switch m.Name {
		case MetricEvents:
			if strings.Contains(m.Labels, `kind="breaker"`) {
				breaker = m.Value
			}
		case MetricOverwritten:
			overwritten = m.Value
		}
	}
	if breaker != 2 {
		t.Errorf("%s{kind=breaker} = %v, want 2", MetricEvents, breaker)
	}
	if overwritten != 4 { // 8 events into a 4-slot ring
		t.Errorf("%s = %v, want 4", MetricOverwritten, overwritten)
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	j := NewJournal(4096)
	ev := Event{Kind: KindRetry, Source: "client", Op: "stat", Trace: 1, Value: 2, Detail: "fms-0"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Append(ev)
	}
}

func BenchmarkJournalAppendParallel(b *testing.B) {
	j := NewJournal(4096)
	ev := Event{Kind: KindRetry, Source: "client", Op: "stat", Trace: 1, Value: 2, Detail: "fms-0"}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j.Append(ev)
		}
	})
}
