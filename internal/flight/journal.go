// Package flight is the black-box flight recorder of the reproduction: an
// always-on, lock-cheap journal of typed cluster events (breaker
// transitions, retries, dedup replays, lease recalls, suppression
// overflows, membership epoch changes, migration batches, SLO window
// rollovers, slow requests) plus an anomaly engine that watches the
// journal's event rates and the SLO layer's rotating windows against
// declarative rules, and on trigger captures a one-shot diagnostic bundle —
// recent events, force-kept spans, status snapshot, goroutine and heap
// profiles — so the evidence of a fault survives past the fault itself.
//
// The journal is the signal plane later control loops (the ROADMAP-3
// autoscaler) subscribe to: Subscribe delivers coalesced wake-ups and
// Since(cursor) pages the events a consumer has not seen yet.
//
// Hot-path discipline mirrors internal/trace: a nil *Journal is valid and
// every method on it is a no-op, so emitters need no enabled-checks, and
// Append is O(1) with zero allocations (a single short critical section
// copying one fixed-size Event value into a preallocated ring slot — see
// BenchmarkJournalAppend and TestAppendZeroAlloc).
package flight

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/telemetry"
)

// DefaultBufEvents is the journal ring capacity used when NewJournal is
// given a non-positive capacity.
const DefaultBufEvents = 4096

// Kind types a journal event.
type Kind uint8

// Event kinds. The zero Kind is reserved so an all-zero Event slot is
// recognizably empty.
const (
	KindBreaker       Kind = iota + 1 // client circuit-breaker state transition
	KindRetry                         // client retry of an idempotent/deduped call
	KindDedupReplay                   // server at-most-once window replayed a completed execution
	KindLeaseRecall                   // dms published a lease recall
	KindLeaseOverflow                 // dms lease table entered publish-everything overflow
	KindEpoch                         // membership epoch installed/changed
	KindMigration                     // one migration batch exported or installed
	KindWindowRoll                    // a telemetry rotating window closed (SLO rollover)
	KindSlowRequest                   // server handler exceeded the slow threshold
	KindAnomaly                       // anomaly engine rule fired
	KindBundle                        // diagnostic bundle captured
	KindPartition                     // sharded-DMS partition event (failover, follower exclusion, 2PC recovery)
	numKinds
)

var kindNames = [numKinds]string{
	KindBreaker:       "breaker",
	KindRetry:         "retry",
	KindDedupReplay:   "dedup_replay",
	KindLeaseRecall:   "lease_recall",
	KindLeaseOverflow: "lease_overflow",
	KindEpoch:         "epoch",
	KindMigration:     "migration",
	KindWindowRoll:    "window_roll",
	KindSlowRequest:   "slow_request",
	KindAnomaly:       "anomaly",
	KindBundle:        "bundle",
	KindPartition:     "partition",
}

// String returns the kind's stable wire name ("" for the zero Kind).
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one journal entry. It is a fixed-size value: Append copies it
// into a preallocated ring slot, so emitting allocates nothing as long as
// the strings the caller passes already exist (op names, addresses, static
// details — never fmt.Sprintf on a hot path).
type Event struct {
	// Seq is the journal-assigned sequence number, 1-based and dense:
	// consecutive events differ by exactly 1, which is what makes
	// since-cursor paging and overwrite detection exact.
	Seq uint64
	// TimeNS is the journal clock's reading at append, unix nanoseconds
	// (monotonic per journal — stamped under the same lock that orders Seq).
	TimeNS int64
	Kind   Kind
	// Source names the emitting component ("dms", "fms-1", "client", ...).
	Source string
	// Op is the wire op or logical operation class involved, when any.
	Op string
	// Trace is the 64-bit trace id of the request involved, 0 when none.
	Trace uint64
	// Value is the kind-specific magnitude: epoch number for KindEpoch,
	// batch size for KindMigration, service nanoseconds for
	// KindSlowRequest, recall seq for KindLeaseRecall, attempt number for
	// KindRetry.
	Value int64
	// Detail is a short kind-specific note (breaker state, rule name, ...).
	Detail string
}

// jsonEvent is the wire form of an Event: the kind as its stable name and
// the trace id as 0x-hex (uint64 exceeds JavaScript's safe integer range,
// and hex matches the slow-request log and /debug/traces).
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	TimeNS int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Source string `json:"source,omitempty"`
	Op     string `json:"op,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON renders the event for the admin surface.
func (e Event) MarshalJSON() ([]byte, error) {
	je := jsonEvent{
		Seq:    e.Seq,
		TimeNS: e.TimeNS,
		Kind:   e.Kind.String(),
		Source: e.Source,
		Op:     e.Op,
		Value:  e.Value,
		Detail: e.Detail,
	}
	if e.Trace != 0 {
		je.Trace = fmt.Sprintf("%#x", e.Trace)
	}
	return json.Marshal(je)
}

// UnmarshalJSON parses the wire form back, so spooled bundles and
// /debug/events pages round-trip into typed events for offline tooling.
// Unknown kind names map to the zero Kind rather than erroring, keeping old
// readers forward-compatible with new kinds.
func (e *Event) UnmarshalJSON(data []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return err
	}
	*e = Event{
		Seq:    je.Seq,
		TimeNS: je.TimeNS,
		Source: je.Source,
		Op:     je.Op,
		Value:  je.Value,
		Detail: je.Detail,
	}
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == je.Kind {
			e.Kind = k
			break
		}
	}
	if je.Trace != "" {
		t, err := strconv.ParseUint(strings.TrimPrefix(je.Trace, "0x"), 16, 64)
		if err != nil {
			return fmt.Errorf("flight: bad trace id %q: %w", je.Trace, err)
		}
		e.Trace = t
	}
	return nil
}

// Journal is a bounded ring of events. Append is a single short critical
// section (mutex, not seqlock, so readers under the race detector are
// exact); Seq is lock-free for cheap "anything new?" polls.
//
// A nil *Journal is valid: every method is a no-op returning zeros.
type Journal struct {
	mu          sync.Mutex
	ring        []Event
	seq         uint64           // last assigned sequence number
	overwritten uint64           // events lost to ring wrap-around
	byKind      [numKinds]uint64 // per-kind totals (lifetime)
	subs        []chan struct{}  // coalesced new-event wake-ups
	nowNS       func() int64     // injectable clock (tests)
	pub         atomic.Uint64    // published seq, for lock-free Seq()
}

// NewJournal returns a journal retaining the most recent capacity events
// (<= 0 means DefaultBufEvents).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultBufEvents
	}
	return &Journal{
		ring:  make([]Event, capacity),
		nowNS: func() int64 { return time.Now().UnixNano() },
	}
}

// SetNow injects the clock stamping Event.TimeNS (tests). Nil-safe.
func (j *Journal) SetNow(now func() int64) {
	if j == nil || now == nil {
		return
	}
	j.mu.Lock()
	j.nowNS = now
	j.mu.Unlock()
}

// Append stamps Seq and TimeNS (unless the caller pre-set TimeNS) and
// stores ev in the ring, overwriting the oldest retained event once full.
// Returns the assigned sequence number. O(1), zero allocations, nil-safe.
func (j *Journal) Append(ev Event) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if ev.TimeNS == 0 {
		ev.TimeNS = j.nowNS()
	}
	if j.seq > uint64(len(j.ring)) {
		j.overwritten++
	}
	j.ring[(j.seq-1)%uint64(len(j.ring))] = ev
	if ev.Kind < numKinds {
		j.byKind[ev.Kind]++
	}
	j.pub.Store(j.seq)
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending wake-up
		}
	}
	j.mu.Unlock()
	return ev.Seq
}

// Emit is Append with the fields spelled out — the form the emitters use.
func (j *Journal) Emit(kind Kind, source, op string, trace uint64, value int64, detail string) uint64 {
	return j.Append(Event{Kind: kind, Source: source, Op: op, Trace: trace, Value: value, Detail: detail})
}

// Seq returns the sequence number of the newest event (0 = empty). Lock-free
// and nil-safe — the cursor a tailing consumer starts from.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	return j.pub.Load()
}

// Cap returns the ring capacity (0 for nil).
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.ring)
}

// Overwritten returns how many events the ring has discarded to make room —
// the signal the buffer is too small for the event rate. Nil-safe.
func (j *Journal) Overwritten() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.overwritten
}

// KindCounts returns lifetime per-kind event totals keyed by Kind.String().
// Nil-safe (nil map for a nil journal).
func (j *Journal) KindCounts() map[string]uint64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]uint64)
	for k := Kind(1); k < numKinds; k++ {
		if j.byKind[k] > 0 {
			out[k.String()] = j.byKind[k]
		}
	}
	return out
}

// Since returns up to max events with sequence numbers strictly greater
// than cursor, oldest first, plus the cursor to pass next time and whether
// the requested range was truncated (events between cursor and the oldest
// retained one were overwritten, or cursor is ahead of the journal — e.g.
// after a restart). max <= 0 means the full ring. Nil-safe.
func (j *Journal) Since(cursor uint64, max int) (events []Event, next uint64, reset bool) {
	if j == nil {
		return nil, cursor, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if max <= 0 || max > len(j.ring) {
		max = len(j.ring)
	}
	oldest := uint64(1)
	if j.seq > uint64(len(j.ring)) {
		oldest = j.seq - uint64(len(j.ring)) + 1
	}
	start := cursor + 1
	if cursor > j.seq {
		// The cursor references a future (or pre-restart) journal: resync.
		reset = true
		start = oldest
	} else if start < oldest {
		reset = true
		start = oldest
	}
	for s := start; s <= j.seq && len(events) < max; s++ {
		events = append(events, j.ring[(s-1)%uint64(len(j.ring))])
	}
	next = cursor
	if len(events) > 0 {
		next = events[len(events)-1].Seq
	} else if cursor > j.seq {
		next = j.seq
	}
	return events, next, reset
}

// Recent returns the newest max events, oldest first (max <= 0 = all
// retained). Nil-safe.
func (j *Journal) Recent(max int) []Event {
	if j == nil {
		return nil
	}
	cursor := uint64(0)
	if max > 0 {
		if seq := j.Seq(); seq > uint64(max) {
			cursor = seq - uint64(max)
		}
	}
	evs, _, _ := j.Since(cursor, max)
	return evs
}

// CountKindSince returns how many retained events of the given kind carry
// TimeNS >= sinceNS — the windowed event rate the anomaly rules evaluate.
// Cold path: scans the ring under the lock. Nil-safe.
func (j *Journal) CountKindSince(kind Kind, sinceNS int64) int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	retained := j.seq
	if retained > uint64(len(j.ring)) {
		retained = uint64(len(j.ring))
	}
	for i := uint64(0); i < retained; i++ {
		ev := &j.ring[(j.seq-1-i)%uint64(len(j.ring))]
		if ev.TimeNS < sinceNS {
			break // ring is time-ordered newest-to-oldest from here back
		}
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// Subscribe registers a coalesced wake-up channel: after any Append the
// channel holds (at most) one token. Consumers drain it, then page with
// Since. Nil-safe (returns nil for a nil journal).
func (j *Journal) Subscribe() <-chan struct{} {
	if j == nil {
		return nil
	}
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel returned by Subscribe. Nil-safe.
func (j *Journal) Unsubscribe(ch <-chan struct{}) {
	if j == nil {
		return
	}
	j.mu.Lock()
	for i, s := range j.subs {
		if s == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
	j.mu.Unlock()
}

// Flight-recorder metric names.
const (
	MetricEvents      = "locofs_flight_events_total"
	MetricOverwritten = "locofs_flight_overwritten_total"
	MetricAnomalies   = "locofs_flight_anomalies_total"
	MetricBundles     = "locofs_flight_bundles_total"
)

// RegisterMetrics exposes the journal's totals on reg:
//
//	locofs_flight_events_total{kind=...}
//	locofs_flight_overwritten_total
//
// Nil-safe (no-op for a nil journal or registry).
func (j *Journal) RegisterMetrics(reg *telemetry.Registry) {
	if j == nil || reg == nil {
		return
	}
	for k := Kind(1); k < numKinds; k++ {
		k := k
		reg.GaugeFunc(MetricEvents, func() float64 {
			j.mu.Lock()
			defer j.mu.Unlock()
			return float64(j.byKind[k])
		}, telemetry.L("kind", k.String()))
	}
	reg.GaugeFunc(MetricOverwritten, func() float64 { return float64(j.Overwritten()) })
}
