package core

import (
	"os"
	"strings"
	"testing"
	"time"

	"locofs/internal/client"
	"locofs/internal/flight"
	"locofs/internal/netsim"
	"locofs/internal/trace"
)

// TestFlightRecorderCapturesBreakerFlapBundle is the end-to-end black-box
// story: a netsim blackhole on the only FMS makes client calls burn their
// deadline, the circuit breaker flaps (open → half-open probe → open ...),
// each transition lands in the cluster's shared flight journal, the
// breaker-flap rule fires on the next anomaly poll, and the captured bundle
// holds the correlated breaker events, the force-kept error spans of the
// failed operations, and a live goroutine profile — with the bundle spooled
// to disk.
func TestFlightRecorderCapturesBreakerFlapBundle(t *testing.T) {
	dir := t.TempDir()
	tr := trace.New(trace.Config{Sample: 1, BufSpans: 256})
	c := startCluster(t, Options{
		FMSCount:  1,
		Tracer:    tr,
		FlightDir: dir,
	})
	cl := newClient(t, c, ClientConfig{
		Tracer:    tr,
		OpTimeout: 25 * time.Millisecond,
		Retry:     client.RetryPolicy{Max: -1},
		Breaker:   client.BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond},
	})
	if err := cl.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}

	// Sever the FMS. Every stat now burns its deadline or fast-fails, and
	// each breaker transition is journaled.
	c.Network().SetFault("fms-0", netsim.FaultConfig{Blackhole: true})
	deadlineCh := time.After(10 * time.Second)
	for c.Flight.Journal().CountKindSince(flight.KindBreaker, 0) < 3 {
		select {
		case <-deadlineCh:
			t.Fatalf("breaker produced only %d transitions",
				c.Flight.Journal().CountKindSince(flight.KindBreaker, 0))
		default:
		}
		_, _ = cl.StatFile("/d/f")
		time.Sleep(35 * time.Millisecond) // let the cooldown elapse so the breaker flaps again
	}

	// One deterministic anomaly poll instead of background Start().
	fired := c.Flight.Poll()
	var flap bool
	for _, a := range fired {
		if a.Rule == "breaker-flap" {
			flap = true
		}
	}
	if !flap {
		t.Fatalf("breaker-flap did not fire; fired = %+v", fired)
	}
	if c.Flight.Captures() == 0 {
		t.Fatal("anomaly fired but no bundle captured")
	}

	b := c.Flight.LastBundle()
	if b == nil {
		t.Fatal("no bundle retained")
	}
	if b.Reason != "breaker-flap" {
		t.Errorf("bundle reason = %q, want breaker-flap", b.Reason)
	}
	// Correlated breaker events survived into the bundle.
	if got := len(b.EventsOfKind(flight.KindBreaker)); got < 3 {
		t.Errorf("bundle breaker events = %d, want >= 3", got)
	}
	// The failed stats' spans are force-kept (non-OK status) and selected
	// into the bundle ahead of healthy spans.
	errSpans := b.ErrorSpans()
	if len(errSpans) == 0 {
		t.Fatal("bundle holds no error spans for the failed ops")
	}
	for _, sp := range errSpans {
		if sp.Status == "" {
			t.Errorf("error span without status: %+v", sp)
		}
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Error("bundle goroutine profile empty")
	}
	// Cluster membership snapshot rode along in Extra.
	if b.Extra["epoch"] == nil || b.Extra["members"] == nil {
		t.Errorf("bundle extra lacks membership state: %+v", b.Extra)
	}
	// Spooled to disk as JSON.
	if b.File == "" {
		t.Fatal("bundle not spooled despite FlightDir")
	}
	if _, err := os.Stat(b.File); err != nil {
		t.Fatalf("spooled bundle missing: %v", err)
	}

	// The anomaly reaches the merged cluster status (the /debug/cluster body).
	cs := c.ClusterStatus()
	var seen bool
	for _, a := range cs.Anomalies {
		if a.Rule == "breaker-flap" && a.Source == "cluster" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("cluster status anomalies = %+v, want breaker-flap from cluster", cs.Anomalies)
	}
}

// TestClusterJournalCollectsServerAndClientEvents checks the shared-journal
// wiring: epoch installs from the servers and lease recalls from the DMS
// land in one timeline alongside client-side events.
func TestClusterJournalCollectsServerAndClientEvents(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2})
	j := c.Flight.Journal()
	// Start installed epoch 1 on every server: one KindEpoch per rpc server.
	if got := j.KindCounts()["epoch"]; got == 0 {
		t.Fatalf("no epoch events after Start; counts = %v", j.KindCounts())
	}
	cl := newClient(t, c, ClientConfig{})
	if err := cl.Mkdir("/flight", 0o755); err != nil {
		t.Fatal(err)
	}
	// Readdir grants a listing lease; the next create under the directory
	// must publish a recall, which must be journaled.
	if _, err := cl.Readdir("/flight"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Mkdir("/flight/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if got := j.KindCounts()["lease_recall"]; got == 0 {
		t.Fatalf("no lease_recall events after coherent mutation; counts = %v", j.KindCounts())
	}
	// AddFMS migrates keys and installs a new epoch; both event kinds land.
	if err := cl.Create("/flight/f1", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFMS(); err != nil {
		t.Fatal(err)
	}
	counts := j.KindCounts()
	if counts["migration"] == 0 {
		t.Errorf("no migration events after AddFMS; counts = %v", counts)
	}
	if counts["epoch"] < 2 {
		t.Errorf("epoch events = %d, want >= 2 after AddFMS", counts["epoch"])
	}
}

// TestSpanRingEvictionCounterSurfacesClusterWide drives enough traced
// traffic through a deliberately tiny span ring that the ring must wrap,
// and asserts the eviction counter (exported per server since PR 6) is
// visible in the merged cluster status — the end-to-end path an operator
// uses to notice an undersized -trace-buf.
func TestSpanRingEvictionCounterSurfacesClusterWide(t *testing.T) {
	tr := trace.New(trace.Config{Sample: 1, BufSpans: 4})
	c := startCluster(t, Options{FMSCount: 1, Tracer: tr})
	cl := newClient(t, c, ClientConfig{Tracer: tr})
	if err := cl.Mkdir("/ev", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := cl.StatDir("/ev"); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Evicted() == 0 {
		t.Fatal("4-slot span ring did not evict under 20+ traced ops")
	}
	cs := c.ClusterStatus()
	if got := cs.SumCounter(trace.MetricSpansEvicted); got == 0 {
		t.Fatalf("merged %s = %v, want > 0", trace.MetricSpansEvicted, got)
	}
}

// TestClusterStatusRendersCacheAndLeaseCounters drives a cacheable workload
// and asserts the merged status carries the PR-7 client dircache counters
// and DMS lease totals — and that Format renders the CACHE/LEASES section
// the `locofsd -role status` summary shows.
func TestClusterStatusRendersCacheAndLeaseCounters(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	if err := cl.Mkdir("/cc", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/cc/f", 0o644); err != nil {
		t.Fatal(err)
	}
	// Repeat stats resolve /cc from the client cache: hits accumulate.
	for i := 0; i < 5; i++ {
		if _, err := cl.StatFile("/cc/f"); err != nil {
			t.Fatal(err)
		}
	}
	cs := c.ClusterStatus()
	if got := cs.SumCounter("locofs_client_dircache_hits_total"); got == 0 {
		t.Fatalf("merged dircache hits = %v, want > 0", got)
	}
	if got := cs.SumCounter("locofs_dms_lease_grants_total"); got == 0 {
		t.Fatalf("merged lease grants = %v, want > 0", got)
	}
	var sb strings.Builder
	cs.Format(&sb)
	out := sb.String()
	for _, want := range []string{"dircache hits", "leases granted", "flight:"} {
		if !strings.Contains(out, want) {
			t.Errorf("status table lacks %q:\n%s", want, out)
		}
	}
}
