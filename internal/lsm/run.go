package lsm

import (
	"bytes"
	"sort"
)

// run is an immutable sorted run of entries — the in-memory analog of an
// SSTable. Entries are unique by key and sorted ascending. Each run carries
// a Bloom filter so point reads skip runs that certainly lack the key (the
// LevelDB technique that keeps read amplification down as runs accumulate).
type run struct {
	keys   [][]byte
	vals   [][]byte
	tomb   []bool
	filter *bloom
}

func (r *run) len() int { return len(r.keys) }

// buildFilter populates the run's Bloom filter from its keys.
func (r *run) buildFilter() {
	r.filter = newBloom(len(r.keys))
	for _, k := range r.keys {
		r.filter.add(k)
	}
}

// get returns the entry for key if present.
func (r *run) get(key []byte) (val []byte, tomb, ok bool) {
	if r.filter != nil && !r.filter.mayContain(key) {
		return nil, false, false
	}
	i := sort.Search(len(r.keys), func(i int) bool {
		return bytes.Compare(r.keys[i], key) >= 0
	})
	if i < len(r.keys) && bytes.Equal(r.keys[i], key) {
		return r.vals[i], r.tomb[i], true
	}
	return nil, false, false
}

// seek returns the index of the first key >= target.
func (r *run) seek(target []byte) int {
	if target == nil {
		return 0
	}
	return sort.Search(len(r.keys), func(i int) bool {
		return bytes.Compare(r.keys[i], target) >= 0
	})
}

// runFromSkiplist freezes a memtable into a sorted run.
func runFromSkiplist(s *skiplist) *run {
	r := &run{
		keys: make([][]byte, 0, s.size),
		vals: make([][]byte, 0, s.size),
		tomb: make([]bool, 0, s.size),
	}
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		r.keys = append(r.keys, n.key)
		r.vals = append(r.vals, n.val)
		r.tomb = append(r.tomb, n.tomb)
	}
	r.buildFilter()
	return r
}

// mergeRuns merge-compacts runs ordered newest-first into a single run.
// When dropTombstones is true (full compaction to the bottom level),
// deleted keys are removed entirely; otherwise tombstones are retained so
// they continue to shadow older data.
func mergeRuns(newestFirst []*run, dropTombstones bool) *run {
	total := 0
	for _, r := range newestFirst {
		total += r.len()
	}
	out := &run{
		keys: make([][]byte, 0, total),
		vals: make([][]byte, 0, total),
		tomb: make([]bool, 0, total),
	}
	idx := make([]int, len(newestFirst))
	for {
		// Pick the smallest key among the run heads; on ties, the newest
		// run (lowest index) wins and older duplicates are skipped.
		var minKey []byte
		src := -1
		for i, r := range newestFirst {
			if idx[i] >= r.len() {
				continue
			}
			k := r.keys[idx[i]]
			if src == -1 || bytes.Compare(k, minKey) < 0 {
				minKey, src = k, i
			}
		}
		if src == -1 {
			out.buildFilter()
			return out
		}
		r := newestFirst[src]
		v, t := r.vals[idx[src]], r.tomb[idx[src]]
		for i, o := range newestFirst {
			if idx[i] < o.len() && bytes.Equal(o.keys[idx[i]], minKey) {
				idx[i]++
			}
		}
		if t && dropTombstones {
			continue
		}
		out.keys = append(out.keys, minKey)
		out.vals = append(out.vals, v)
		out.tomb = append(out.tomb, t)
	}
}
