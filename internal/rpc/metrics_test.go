package rpc

import (
	"sync"
	"testing"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// startInstrumented runs a server with a telemetry registry on an
// in-process network and returns a connected client.
func startInstrumented(t *testing.T, reg *telemetry.Registry, configure func(*Server)) *Client {
	t.Helper()
	net := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { net.Close() })
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.SetTelemetry(reg)
	if configure != nil {
		configure(s)
	}
	go s.Serve(l)
	t.Cleanup(s.Shutdown)
	c, err := Dial(net, "srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerPerOpMetrics(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.L("server", "test"))
	c := startInstrumented(t, reg, func(s *Server) {
		s.Handle(wire.OpMkdir, func(body []byte) (wire.Status, []byte) {
			return wire.StatusOK, nil
		})
		s.Handle(wire.OpStatFile, func(body []byte) (wire.Status, []byte) {
			return wire.StatusNotFound, nil
		})
		// A deterministic modeled service time so histogram contents are
		// predictable: 1 ms per Mkdir, 2 ms per anything else.
		s.SetServiceFunc(func(op wire.Op, run func()) time.Duration {
			run()
			if op == wire.OpMkdir {
				return time.Millisecond
			}
			return 2 * time.Millisecond
		})
	})

	const mkdirs, stats = 7, 3
	for i := 0; i < mkdirs; i++ {
		if _, _, err := c.Call(wire.OpMkdir, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < stats; i++ {
		if st, _, err := c.Call(wire.OpStatFile, nil); err != nil || st != wire.StatusNotFound {
			t.Fatalf("stat: %v %v", st, err)
		}
	}

	snap := reg.Snapshot()
	find := func(name, op string) (telemetry.Metric, bool) {
		for _, m := range snap.Metrics {
			if m.Name == name && m.Labels == `{op="`+op+`",server="test"}` {
				return m, true
			}
		}
		return telemetry.Metric{}, false
	}

	if m, ok := find(MetricRequests, "Mkdir"); !ok || m.Value != mkdirs {
		t.Errorf("Mkdir requests = %+v (found=%v), want %d", m, ok, mkdirs)
	}
	if m, ok := find(MetricRequests, "StatFile"); !ok || m.Value != stats {
		t.Errorf("StatFile requests = %+v (found=%v), want %d", m, ok, stats)
	}
	if m, ok := find(MetricErrors, "StatFile"); !ok || m.Value != stats {
		t.Errorf("StatFile errors = %+v (found=%v), want %d", m, ok, stats)
	}
	if m, ok := find(MetricErrors, "Mkdir"); !ok || m.Value != 0 {
		t.Errorf("Mkdir errors = %+v, want 0", m)
	}

	mk, ok := find(MetricService, "Mkdir")
	if !ok || mk.Hist.Count != mkdirs {
		t.Fatalf("Mkdir service histogram = %+v (found=%v)", mk, ok)
	}
	// All Mkdir observations are exactly 1 ms (modeled), so max is exact
	// and the median lands in the 1 ms log bucket.
	if mk.Hist.Max != time.Millisecond {
		t.Errorf("Mkdir service max = %v, want 1ms", mk.Hist.Max)
	}
	if p50 := mk.Hist.Quantile(0.5); p50 < 512*time.Microsecond || p50 > time.Millisecond {
		t.Errorf("Mkdir service p50 = %v, want within [512µs, 1ms]", p50)
	}
	st, _ := find(MetricService, "StatFile")
	if st.Hist.Max != 2*time.Millisecond {
		t.Errorf("StatFile service max = %v, want 2ms", st.Hist.Max)
	}

	if q, ok := find(MetricQueue, "Mkdir"); !ok || q.Hist.Count != mkdirs {
		t.Errorf("Mkdir queue histogram count = %d (found=%v), want %d", q.Hist.Count, ok, mkdirs)
	}
}

func TestServerMetricsConcurrent(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := startInstrumented(t, reg, func(s *Server) {
		s.Handle(wire.OpMkdir, func(body []byte) (wire.Status, []byte) {
			return wire.StatusOK, body
		})
	})
	const workers = 8
	const each = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, _, err := c.Call(wire.OpMkdir, []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	for _, m := range snap.Metrics {
		if m.Name == MetricRequests && m.Labels == `{op="Mkdir"}` {
			if m.Value != workers*each {
				t.Errorf("requests = %v, want %d", m.Value, workers*each)
			}
			return
		}
	}
	t.Fatal("Mkdir request counter not found")
}

func TestCallTracedEchoesTrace(t *testing.T) {
	net := netsim.NewNetwork(netsim.Loopback)
	defer net.Close()
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	go s.Serve(l)
	defer s.Shutdown()

	// The echo is on the wire, not surfaced by CallTraced itself; observe
	// it at the transport by wrapping a raw connection.
	conn, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.Msg{ID: 1, Op: wire.OpPing, Trace: 0xabc}); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsResp || resp.Trace != 0xabc {
		t.Errorf("response = %+v, want echoed trace 0xabc", resp)
	}
	conn.Close()
}

func TestUninstrumentedServerUnaffected(t *testing.T) {
	// No registry installed: requests must flow exactly as before.
	c := startInstrumented(t, nil, nil)
	if st, body, err := c.Call(wire.OpPing, []byte("hi")); err != nil || st != wire.StatusOK || string(body) != "hi" {
		t.Fatalf("ping = %v %q %v", st, body, err)
	}
}
