// Package locofs is the public API of the LocoFS reproduction — a
// distributed file system with a loosely-coupled metadata service
// (Li et al., SC'17).
//
// The metadata service separates directory metadata (one Directory Metadata
// Server holding every d-inode, keyed by full path in a B+-tree store) from
// file metadata (File Metadata Servers holding per-file access/content
// parts, placed by consistent-hashing directory UUID + name), with file
// data in an object store addressed by immutable file UUID + block number.
// Every hot-path metadata operation contacts one or two servers.
//
// # In-process cluster
//
//	cluster, err := locofs.Start(locofs.Options{FMSCount: 4})
//	defer cluster.Close()
//	fs, err := cluster.NewClient(locofs.ClientConfig{UID: 1000})
//	defer fs.Close()
//	fs.Mkdir("/data", 0o755)
//	fs.Create("/data/f", 0o644)
//
// # Real deployment
//
// Servers run over TCP via DialConfig/NewClient and the server constructors
// in this package; see cmd/locofsd for a complete daemon.
//
// # Contexts and deadlines
//
// Every Client method has a *Context variant (MkdirContext, StatContext,
// OpenContext, ...) taking a context.Context as its first argument; the
// plain methods are equivalent to passing context.Background(). The context
// governs the whole logical operation — every RPC attempt it issues and
// every backoff wait between retries:
//
//   - A context deadline bounds each RPC attempt in flight: the attempt
//     fails with ErrDeadlineExceeded (which matches
//     context.DeadlineExceeded under errors.Is) when the deadline expires
//     first. WithOpTimeout still applies per attempt; the effective
//     per-attempt deadline is the tighter of the two.
//   - Cancellation is checked before every retry and wakes any backoff
//     sleep immediately, so a canceled operation stops retrying at once.
//     Cancellation does not recall an attempt already on the wire — a
//     mutation whose request was already sent may still execute on the
//     server even though the call returns the context's error.
//
// # Sharded directory metadata
//
// Options.DMSPartitions/DMSCuts/DMSReplicas shard the directory namespace
// into replicated subtree partitions (DESIGN.md §16). Clients route by
// path using a versioned partition map fetched from the cluster and
// refreshed automatically when responses carry a newer map version or a
// partition refuses a misrouted path (see ErrStale). Note the wire-format
// flag day: sharded-era servers and clients exchange a partition-map
// version field in every message header, so both sides must be built from
// the same release.
//
// The packages under internal/ hold the implementation: metadata layouts,
// KV engines, the RPC stack, the servers, the baseline systems the paper
// compares against, and the experiment harness (see DESIGN.md).
package locofs

import (
	"time"

	"locofs/internal/client"
	"locofs/internal/core"
	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/uuid"
)

// Options configures an in-process cluster. See core.Options for fields.
type Options = core.Options

// ClientConfig tweaks one client of an in-process cluster.
type ClientConfig = core.ClientConfig

// Cluster is a running in-process LocoFS deployment.
type Cluster = core.Cluster

// Start launches an in-process cluster: one DMS, Options.FMSCount file
// metadata servers, and Options.OSSCount object store servers.
func Start(opts Options) (*Cluster, error) { return core.Start(opts) }

// KVCost prices server-side work for modeled-hardware experiments.
type KVCost = core.KVCost

// PaperKVCost is the calibration reproducing the paper's metadata nodes.
var PaperKVCost = core.PaperKVCost

// Client is a LocoLib file-system client.
type Client = client.Client

// File is an open file handle.
type File = client.File

// Attr is a stat result. Attr.Kind distinguishes files from directories —
// Client.Stat resolves either with one call.
type Attr = client.Attr

// Kind is the kind of namespace object an Attr describes.
type Kind = client.Kind

// Kinds reported in Attr.Kind.
const (
	KindFile = client.KindFile
	KindDir  = client.KindDir
)

// DirEntry is one readdir result.
type DirEntry = client.DirEntry

// DialConfig describes a cluster to connect a standalone client to
// (typically over TCP; see TCPDialer).
type DialConfig = client.Config

// Dial connects a client to the servers in cfg, with any options applied
// on top:
//
//	fs, err := locofs.Dial(cfg,
//		locofs.WithOpTimeout(200*time.Millisecond),
//		locofs.WithRetry(locofs.RetryPolicy{Max: 3, Base: 10 * time.Millisecond}),
//		locofs.WithBreaker(locofs.BreakerConfig{Threshold: 5}))
//
// A zero-option Dial behaves exactly as before the fault-tolerance layer:
// no per-attempt deadline, one transparent reconnect-retry per call, no
// circuit breaker.
func Dial(cfg DialConfig, opts ...DialOption) (*Client, error) { return client.Dial(cfg, opts...) }

// DialOption layers fault-tolerance policy onto a DialConfig at Dial time.
type DialOption = client.DialOption

// RetryPolicy bounds automatic retries of failed RPC attempts; see
// client.RetryPolicy for the semantics and the idempotency matrix.
type RetryPolicy = client.RetryPolicy

// BreakerConfig configures the per-endpoint circuit breaker.
type BreakerConfig = client.BreakerConfig

// WithOpTimeout bounds each RPC attempt; expiry fails the attempt with
// ErrDeadlineExceeded (and the retry policy decides whether to try again).
func WithOpTimeout(d time.Duration) DialOption { return client.WithOpTimeout(d) }

// WithRetry sets the automatic retry policy.
func WithRetry(p RetryPolicy) DialOption { return client.WithRetry(p) }

// WithBreaker enables the per-endpoint circuit breaker.
func WithBreaker(b BreakerConfig) DialOption { return client.WithBreaker(b) }

// LinkConfig models a network link (RTT + bandwidth) for virtual-time
// latency accounting.
type LinkConfig = netsim.LinkConfig

// Paper1GbE is the link measured in the paper: 0.174 ms RTT, 1 Gbps.
var Paper1GbE = netsim.Paper1GbE

// TCPDialer dials real TCP endpoints for DialConfig.Dialer.
type TCPDialer = netsim.TCPDialer

// ListenTCP starts a TCP listener for serving a LocoFS component.
func ListenTCP(addr string) (*netsim.TCPListener, error) { return netsim.ListenTCP(addr) }

// Server types for standalone (TCP) deployments. Construct with the
// respective New functions, attach to an RPCServer, and serve a listener;
// cmd/locofsd shows the full wiring.
type (
	// DMSOptions configures a directory metadata server.
	DMSOptions = dms.Options
	// DMS is the directory metadata server.
	DMS = dms.Server
	// FMSOptions configures a file metadata server.
	FMSOptions = fms.Options
	// FMS is a file metadata server.
	FMS = fms.Server
	// ObjectStore is a data block server.
	ObjectStore = objstore.Server
	// RPCServer dispatches LocoFS requests to an attached component.
	RPCServer = rpc.Server
)

// NewDMS builds a directory metadata server.
func NewDMS(opts DMSOptions) *DMS { return dms.New(opts) }

// NewFMS builds a file metadata server. Each FMS needs a unique ServerID.
func NewFMS(opts FMSOptions) *FMS { return fms.New(opts) }

// NewObjectStore builds an object store server (nil store = in-memory).
func NewObjectStore() *ObjectStore { return objstore.New(nil) }

// NewRPCServer builds the request dispatcher a component attaches to.
func NewRPCServer() *RPCServer { return rpc.NewServer() }

// UUID identifies a directory or file for its whole lifetime; it never
// changes on rename, which is what keeps renames cheap (§3.4.2).
type UUID = uuid.UUID
