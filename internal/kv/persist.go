package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Persistent adds durability to any Store: every mutation is appended to a
// write-ahead log before being applied, and Snapshot writes a full dump and
// truncates the log. OpenPersistent replays snapshot + log, so a metadata
// server restarted after a crash recovers its state — the role Kyoto
// Cabinet's on-disk databases play in the paper's deployment.
//
// Records are CRC-checked; a torn tail (partial write at crash) is ignored.
// Reads are served by the wrapped in-memory engine, so read performance is
// unchanged.
type Persistent struct {
	inner   Store
	ordered Ordered // nil when inner is unordered

	mu        sync.Mutex
	dir       string
	wal       *os.File
	walW      *bufio.Writer
	mutations int
	// SnapshotEvery triggers an automatic snapshot after this many logged
	// mutations (0 = never automatic).
	SnapshotEvery int
}

// WAL record kinds.
const (
	recPut byte = iota + 1
	recDelete
	recPatch
	recAppend
	recMovePrefix
)

const (
	walFile  = "store.wal"
	snapFile = "store.snap"
)

// OpenPersistent wraps inner with durability rooted at dir, replaying any
// existing snapshot and log into it first.
func OpenPersistent(dir string, inner Store) (*Persistent, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kv: create data dir: %w", err)
	}
	p := &Persistent{inner: inner, dir: dir}
	if o, ok := inner.(Ordered); ok {
		p.ordered = o
	}
	if err := p.replaySnapshot(); err != nil {
		return nil, err
	}
	if err := p.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kv: open wal: %w", err)
	}
	p.wal = f
	p.walW = bufio.NewWriter(f)
	return p, nil
}

func (p *Persistent) replaySnapshot() error {
	data, err := os.ReadFile(filepath.Join(p.dir, snapFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("kv: read snapshot: %w", err)
	}
	for len(data) > 0 {
		rec, rest, ok := decodeRecord(data)
		if !ok {
			break // torn tail
		}
		data = rest
		if rec.kind == recPut {
			p.inner.Put(rec.a, rec.b)
		}
	}
	return nil
}

func (p *Persistent) replayWAL() error {
	data, err := os.ReadFile(filepath.Join(p.dir, walFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("kv: read wal: %w", err)
	}
	for len(data) > 0 {
		rec, rest, ok := decodeRecord(data)
		if !ok {
			break // torn tail from a crash mid-append
		}
		data = rest
		switch rec.kind {
		case recPut:
			p.inner.Put(rec.a, rec.b)
		case recDelete:
			p.inner.Delete(rec.a)
		case recPatch:
			p.inner.PatchInPlace(rec.a, int(rec.n), rec.b)
		case recAppend:
			p.inner.AppendValue(rec.a, rec.b)
		case recMovePrefix:
			if p.ordered != nil {
				p.ordered.MovePrefix(rec.a, rec.b)
			}
		}
	}
	return nil
}

// record is one decoded WAL/snapshot entry: kind, two byte strings, and an
// integer argument (patch offset).
type record struct {
	kind byte
	a, b []byte
	n    uint64
}

// encodeRecord layout: crc32(payload) | payloadLen | payload, where payload
// = kind | uvarint n | uvarint len(a) | a | uvarint len(b) | b.
func appendRecord(dst []byte, r record) []byte {
	var tmp [binary.MaxVarintLen64]byte
	payload := make([]byte, 0, 16+len(r.a)+len(r.b))
	payload = append(payload, r.kind)
	n := binary.PutUvarint(tmp[:], r.n)
	payload = append(payload, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(r.a)))
	payload = append(payload, tmp[:n]...)
	payload = append(payload, r.a...)
	n = binary.PutUvarint(tmp[:], uint64(len(r.b)))
	payload = append(payload, tmp[:n]...)
	payload = append(payload, r.b...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func decodeRecord(data []byte) (record, []byte, bool) {
	if len(data) < 8 {
		return record{}, nil, false
	}
	sum := binary.LittleEndian.Uint32(data[0:])
	plen := binary.LittleEndian.Uint32(data[4:])
	if uint32(len(data)-8) < plen {
		return record{}, nil, false
	}
	payload := data[8 : 8+plen]
	rest := data[8+plen:]
	if crc32.ChecksumIEEE(payload) != sum {
		return record{}, nil, false
	}
	var r record
	if len(payload) < 1 {
		return record{}, nil, false
	}
	r.kind = payload[0]
	payload = payload[1:]
	var adv int
	if r.n, adv = binary.Uvarint(payload); adv <= 0 {
		return record{}, nil, false
	}
	payload = payload[adv:]
	la, adv := binary.Uvarint(payload)
	if adv <= 0 || uint64(len(payload)-adv) < la {
		return record{}, nil, false
	}
	payload = payload[adv:]
	r.a = append([]byte(nil), payload[:la]...)
	payload = payload[la:]
	lb, adv := binary.Uvarint(payload)
	if adv <= 0 || uint64(len(payload)-adv) < lb {
		return record{}, nil, false
	}
	payload = payload[adv:]
	r.b = append([]byte(nil), payload[:lb]...)
	return r, rest, true
}

// log appends one record to the WAL and applies auto-snapshotting.
func (p *Persistent) log(r record) {
	p.mu.Lock()
	buf := appendRecord(nil, r)
	p.walW.Write(buf)
	p.walW.Flush()
	p.mutations++
	doSnap := p.SnapshotEvery > 0 && p.mutations >= p.SnapshotEvery
	p.mu.Unlock()
	if doSnap {
		p.Snapshot()
	}
}

// Snapshot dumps the full store to disk atomically and truncates the WAL.
func (p *Persistent) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	tmp := filepath.Join(p.dir, snapFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kv: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	var werr error
	p.inner.ForEach(func(k, v []byte) bool {
		_, werr = w.Write(appendRecord(nil, record{kind: recPut, a: k, b: v}))
		return werr == nil
	})
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("kv: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapFile)); err != nil {
		return fmt.Errorf("kv: snapshot rename: %w", err)
	}
	if err := p.wal.Truncate(0); err != nil {
		return fmt.Errorf("kv: wal truncate: %w", err)
	}
	if _, err := p.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	p.walW.Reset(p.wal)
	p.mutations = 0
	return nil
}

// Close flushes and closes the WAL.
func (p *Persistent) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.walW.Flush(); err != nil {
		p.wal.Close()
		return err
	}
	return p.wal.Close()
}

// Get implements Store.
func (p *Persistent) Get(key []byte) ([]byte, bool) { return p.inner.Get(key) }

// Put implements Store, logging before applying.
func (p *Persistent) Put(key, value []byte) {
	p.log(record{kind: recPut, a: key, b: value})
	p.inner.Put(key, value)
}

// Delete implements Store.
func (p *Persistent) Delete(key []byte) bool {
	p.log(record{kind: recDelete, a: key})
	return p.inner.Delete(key)
}

// PatchInPlace implements Store.
func (p *Persistent) PatchInPlace(key []byte, off int, data []byte) bool {
	if off < 0 {
		return false
	}
	p.log(record{kind: recPatch, a: key, b: data, n: uint64(off)})
	return p.inner.PatchInPlace(key, off, data)
}

// ReadAt implements Store.
func (p *Persistent) ReadAt(key []byte, off int, buf []byte) bool {
	return p.inner.ReadAt(key, off, buf)
}

// AppendValue implements Store.
func (p *Persistent) AppendValue(key, data []byte) {
	p.log(record{kind: recAppend, a: key, b: data})
	p.inner.AppendValue(key, data)
}

// Len implements Store.
func (p *Persistent) Len() int { return p.inner.Len() }

// ForEach implements Store.
func (p *Persistent) ForEach(fn func(key, value []byte) bool) { p.inner.ForEach(fn) }

// AscendRange implements Ordered when the wrapped store is ordered.
func (p *Persistent) AscendRange(start, end []byte, fn func(key, value []byte) bool) {
	p.ordered.AscendRange(start, end, fn)
}

// AscendPrefix implements Ordered when the wrapped store is ordered.
func (p *Persistent) AscendPrefix(prefix []byte, fn func(key, value []byte) bool) {
	p.ordered.AscendPrefix(prefix, fn)
}

// MovePrefix implements Ordered when the wrapped store is ordered.
func (p *Persistent) MovePrefix(oldPrefix, newPrefix []byte) int {
	p.log(record{kind: recMovePrefix, a: oldPrefix, b: newPrefix})
	return p.ordered.MovePrefix(oldPrefix, newPrefix)
}

// IsOrdered reports whether ordered operations are available.
func (p *Persistent) IsOrdered() bool { return p.ordered != nil }

var _ Store = (*Persistent)(nil)
