// Package fspath provides the path normalization and decomposition rules
// shared by LocoFS clients and the directory metadata server. All metadata
// keys derived from paths go through Clean first, so one canonical spelling
// exists for every directory.
package fspath

import (
	"errors"
	"strings"
)

// ErrInvalidPath reports a path that cannot be normalized (empty, relative,
// or escaping the root).
var ErrInvalidPath = errors.New("fspath: invalid path")

// Clean normalizes p to a canonical absolute path: rooted at "/", no
// trailing slash (except the root itself), no empty, "." or ".." segments.
func Clean(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", ErrInvalidPath
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, s := range parts {
		switch s {
		case "", ".":
		case "..":
			if len(out) == 0 {
				return "", ErrInvalidPath
			}
			out = out[:len(out)-1]
		default:
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// Split returns the parent directory and base name of a cleaned path.
// Split("/") returns ("/", "").
func Split(cleaned string) (dir, base string) {
	if cleaned == "/" {
		return "/", ""
	}
	i := strings.LastIndexByte(cleaned, '/')
	if i == 0 {
		return "/", cleaned[1:]
	}
	return cleaned[:i], cleaned[i+1:]
}

// Ancestors returns every proper ancestor of a cleaned path from the root
// down, excluding the path itself. Ancestors("/a/b/c") = ["/", "/a", "/a/b"].
func Ancestors(cleaned string) []string {
	if cleaned == "/" {
		return nil
	}
	out := []string{"/"}
	for i := 1; i < len(cleaned); i++ {
		if cleaned[i] == '/' {
			out = append(out, cleaned[:i])
		}
	}
	return out
}

// Depth returns the number of components in a cleaned path; the root has
// depth 0.
func Depth(cleaned string) int {
	if cleaned == "/" {
		return 0
	}
	return strings.Count(cleaned, "/")
}

// IsAncestorOf reports whether a (cleaned) is a proper ancestor of b
// (cleaned).
func IsAncestorOf(a, b string) bool {
	if a == b {
		return false
	}
	if a == "/" {
		return len(b) > 1
	}
	return strings.HasPrefix(b, a+"/")
}

// Join appends base to a cleaned directory path.
func Join(dir, base string) string {
	if dir == "/" {
		return "/" + base
	}
	return dir + "/" + base
}

// ValidName reports whether base is usable as a single path component.
func ValidName(base string) bool {
	return base != "" && base != "." && base != ".." && !strings.ContainsRune(base, '/')
}
