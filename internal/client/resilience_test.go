package client

import (
	"testing"
	"time"

	"locofs/internal/wire"
)

func TestRetryPolicyNormalized(t *testing.T) {
	if got := (RetryPolicy{}).normalized(); got != DefaultRetry {
		t.Errorf("zero policy normalized to %+v, want DefaultRetry", got)
	}
	if got := (RetryPolicy{Max: -1}).normalized(); got.Max != 0 {
		t.Errorf("disabled policy Max = %d, want 0", got.Max)
	}
	custom := RetryPolicy{Max: 3, Base: time.Millisecond}
	if got := custom.normalized(); got != custom {
		t.Errorf("custom policy altered: %+v", got)
	}
}

func TestBackoffEnvelope(t *testing.T) {
	p := RetryPolicy{Max: 10, Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}
	for n, max := range map[int]time.Duration{
		1:  10 * time.Millisecond,
		2:  20 * time.Millisecond,
		3:  40 * time.Millisecond,
		10: 40 * time.Millisecond, // capped, and the shift must not overflow
	} {
		for i := 0; i < 50; i++ {
			d := p.backoff(n)
			if d < max/2 || d > max {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", n, d, max/2, max)
			}
		}
	}
	if d := (RetryPolicy{Max: 1}).backoff(1); d != 0 {
		t.Errorf("zero-base backoff = %v, want 0", d)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var transitions []string
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, clock,
		func(s string) { transitions = append(transitions, s) })

	// Closed: failures below the threshold keep admitting calls.
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.report(false)
	}
	// A success resets the consecutive-failure count.
	b.report(true)
	b.report(false)
	b.report(false)
	if err := b.allow(); err != nil {
		t.Fatal("breaker tripped before threshold")
	}
	// Third consecutive failure trips it.
	b.report(false)
	if err := b.allow(); err == nil {
		t.Fatal("open breaker admitted a call")
	} else if wire.StatusOf(err) != wire.StatusUnavailable {
		t.Fatalf("open breaker error = %v, want EUNAVAIL", err)
	}

	// Cooldown elapses: exactly one probe is admitted (half-open); others
	// are still refused until it reports.
	now = now.Add(2 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.allow(); err == nil {
		t.Fatal("second call admitted during half-open probe")
	}
	// Failed probe re-opens and restarts the cooldown.
	b.report(false)
	if err := b.allow(); err == nil {
		t.Fatal("breaker admitted call right after failed probe")
	}
	now = now.Add(2 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	// Successful probe closes the circuit for everyone.
	b.report(true)
	if err := b.allow(); err != nil {
		t.Fatalf("closed breaker refused call: %v", err)
	}

	want := []string{"open", "half-open", "open", "half-open", "closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerDisabledIsNoop(t *testing.T) {
	b := newBreaker(BreakerConfig{}, nil, nil)
	for i := 0; i < 100; i++ {
		if err := b.allow(); err != nil {
			t.Fatal("disabled breaker refused a call")
		}
		b.report(false)
	}
}

func TestNextReqNonZeroAndDistinct(t *testing.T) {
	r := newResilience(0, RetryPolicy{}, BreakerConfig{}, nil)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := r.nextReq()
		if id == 0 {
			t.Fatal("minted zero request id")
		}
		if seen[id] {
			t.Fatalf("request id %#x repeated", id)
		}
		seen[id] = true
	}
}
