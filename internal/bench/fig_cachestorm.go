package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/client"
	"locofs/internal/core"
	"locofs/internal/wire"
)

// cacheStormTTL is the TTL used by the TTL-only mode. A TTL cache has to
// stay short to bound how stale a client may read, so this is the knob a
// TTL-only deployment would actually run with — unlike the lease-coherent
// mode, which can hold entries for the full 30 s paper lease because the
// DMS keeps them coherent.
const cacheStormTTL = 250 * time.Millisecond

// cacheStormLease is the granted lease in the coherent mode (the paper's
// §3.2.2 30 s client cache lease).
const cacheStormLease = 30 * time.Second

// FigCacheStorm measures the DMS offered load under a zipfian, read-heavy
// metadata storm from a client fleet one to two orders of magnitude larger
// than the mdtest throughput runs use, with the directory cache in three
// modes: off (LocoFS-NC), TTL-only (the pre-lease cache), and
// lease-coherent (negative entries + listing cache + hot tier). Clients
// run on per-client virtual clocks (~2 ms/op) so TTL expiry is
// deterministic, warm their caches through the same zipfian stream, and
// then the steady-state phase counts requests actually served by the DMS.
// The run fails if the lease-coherent cache does not cut steady-state DMS
// load by at least 5x versus TTL-only, and ends with a coherence probe: a
// cached ENOENT must stop being served from cache once its holder observes
// the publication of a conflicting mkdir.
func FigCacheStorm(env Env) (*Table, error) {
	clients := 96
	dirs := 48
	warm, measure := 150, env.TputItems*2
	if env.LatItems < 200 { // quick environment
		clients = 24
		dirs = 24
		warm, measure = 60, 160
	}

	type modeResult struct {
		name    string
		ops     int
		dmsReqs uint64
	}
	var results []modeResult

	modes := []struct {
		name string
		opts core.Options
		cc   core.ClientConfig
	}{
		{"caching off", core.Options{DisableClientCache: true}, core.ClientConfig{}},
		{"ttl-only", core.Options{DisableLeaseCoherence: true, Lease: cacheStormTTL}, core.ClientConfig{}},
		{"lease-coherent", core.Options{Lease: cacheStormLease}, core.ClientConfig{HotEntries: 16}},
	}
	for _, m := range modes {
		opts := m.opts
		opts.FMSCount = 4
		opts.Link = env.Link
		reqs, err := runCacheStorm(opts, m.cc, clients, dirs, warm, measure, m.name == "lease-coherent")
		if err != nil {
			return nil, fmt.Errorf("cachestorm %s: %w", m.name, err)
		}
		results = append(results, modeResult{m.name, clients * measure, reqs})
	}

	t := &Table{
		Title: "Cache storm: steady-state DMS offered load vs client cache mode",
		Note: fmt.Sprintf("%d clients over %d dirs (zipf s=1.3), 55%% statdir / 25%% readdir / 15%% ENOENT probe / 5%% file churn; virtual clocks at 2ms/op; ttl=%v, lease=%v; warm %d + measured %d ops/client",
			clients, dirs, cacheStormTTL, cacheStormLease, warm, measure),
		Headers: []string{"cache mode", "client ops", "DMS reqs", "DMS reqs/op", "vs ttl-only"},
	}
	ttl := results[1].dmsReqs
	for _, r := range results {
		rel := "-"
		if r.name != "ttl-only" {
			if r.dmsReqs > 0 {
				rel = fmt.Sprintf("%.1fx", float64(ttl)/float64(r.dmsReqs))
			} else {
				rel = fmt.Sprintf(">%dx", ttl) // zero steady-state requests
			}
		}
		t.AddRow(r.name, fmt.Sprint(r.ops),
			fmt.Sprint(r.dmsReqs),
			fmt.Sprintf("%.3f", float64(r.dmsReqs)/float64(r.ops)),
			rel)
	}

	coh := results[2].dmsReqs
	if coh == 0 {
		coh = 1
	}
	if float64(ttl)/float64(coh) < 5 {
		return nil, fmt.Errorf("cachestorm: lease-coherent served %d DMS reqs vs %d ttl-only — less than the required 5x reduction",
			results[2].dmsReqs, ttl)
	}
	t.Note += "; coherence probe: cached ENOENT dropped after observed publish (pass)"
	return t, nil
}

// stormClock is a per-client virtual clock: reads are the client's Now,
// and the owning worker advances it ~2 ms per operation.
type stormClock struct {
	ns atomic.Int64
}

func (s *stormClock) now() time.Time {
	return time.Unix(1<<31, 0).Add(time.Duration(s.ns.Load()))
}

// runCacheStorm starts one cluster in the given mode, runs the zipfian
// storm (warm then measured phase) and returns the DMS request count of
// the measured phase alone. When coherent it finishes with the
// negative-entry coherence probe.
func runCacheStorm(opts core.Options, cc core.ClientConfig, clients, dirs, warm, measure int, coherent bool) (uint64, error) {
	cluster, err := core.Start(opts)
	if err != nil {
		return 0, err
	}
	defer cluster.Close()

	seed, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return 0, err
	}
	defer seed.Close()
	names := make([]string, dirs)
	for _, p := range []string{"/storm", "/obs"} {
		if err := seed.Mkdir(p, 0o755); err != nil {
			return 0, err
		}
	}
	for i := range names {
		names[i] = fmt.Sprintf("/storm/d%03d", i)
		if err := seed.Mkdir(names[i], 0o755); err != nil {
			return 0, err
		}
		// A couple of subdirs so readdir has a DMS-side listing, plus
		// files for the FMS side of the merge.
		for s := 0; s < 2; s++ {
			if err := seed.Mkdir(fmt.Sprintf("%s/s%d", names[i], s), 0o755); err != nil {
				return 0, err
			}
		}
		for f := 0; f < 3; f++ {
			if err := seed.Create(fmt.Sprintf("%s/f%d", names[i], f), 0o644); err != nil {
				return 0, err
			}
		}
	}

	var wg, warmed sync.WaitGroup
	startMeasure := make(chan struct{})
	var workErr error
	var workErrOnce sync.Once
	fail := func(w int, err error) {
		workErrOnce.Do(func() { workErr = fmt.Errorf("worker %d: %w", w, err) })
	}
	for w := 0; w < clients; w++ {
		clock := &stormClock{}
		ccfg := cc
		ccfg.Now = clock.now
		wcl, err := cluster.NewClient(ccfg)
		if err != nil {
			close(startMeasure)
			wg.Wait()
			return 0, err
		}
		wg.Add(1)
		warmed.Add(1)
		go func(w int, wcl *client.Client, clock *stormClock) {
			defer wg.Done()
			defer wcl.Close()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(dirs-1))
			step := func(i int) error {
				clock.ns.Add(int64(2 * time.Millisecond))
				dir := names[zipf.Uint64()]
				switch m := i % 20; {
				case m < 11: // stat the zipfian-hot directory
					_, err := wcl.StatDir(dir)
					return err
				case m < 16: // list it (DMS subdirs + FMS files)
					_, err := wcl.Readdir(dir)
					return err
				case m < 19: // probe a name that never exists (ENOENT)
					_, err := wcl.StatDir(dir + "/missing")
					if wire.StatusOf(err) != wire.StatusNotFound {
						return fmt.Errorf("ENOENT probe: got %v", err)
					}
					return nil
				default: // file churn under a cached directory (FMS-only)
					p := fmt.Sprintf("%s/c%d-%d", dir, w, i)
					if err := wcl.Create(p, 0o644); err != nil {
						return err
					}
					return wcl.Remove(p)
				}
			}
			// Warm through the zipfian stream (populates the TopK hot
			// sketch realistically), then prime every directory once so
			// the measured phase is pure steady state — without the prime,
			// zipf-tail directories get their cold misses mid-measurement
			// in every mode, blurring the steady-state comparison.
			ok := true
			for i := 0; i < warm; i++ {
				if err := step(i); err != nil {
					fail(w, err)
					ok = false
					break
				}
			}
			for _, dir := range names {
				if !ok {
					break
				}
				clock.ns.Add(int64(6 * time.Millisecond))
				if _, err := wcl.StatDir(dir); err != nil {
					fail(w, err)
					ok = false
					break
				}
				if _, err := wcl.Readdir(dir); err != nil {
					fail(w, err)
					ok = false
					break
				}
				if _, err := wcl.StatDir(dir + "/missing"); wire.StatusOf(err) != wire.StatusNotFound {
					fail(w, fmt.Errorf("prime probe: got %v", err))
					ok = false
					break
				}
			}
			warmed.Done()
			if !ok {
				return
			}
			<-startMeasure
			for i := 0; i < measure; i++ {
				if err := step(warm + i); err != nil {
					fail(w, err)
					return
				}
			}
		}(w, wcl, clock)
	}
	warmed.Wait()
	pre := cluster.DMSOpsServed()
	close(startMeasure)
	wg.Wait()
	if workErr != nil {
		return 0, workErr
	}
	served := cluster.DMSOpsServed() - pre

	if coherent {
		if err := stormCoherenceProbe(cluster, seed); err != nil {
			return 0, err
		}
	}
	return served, nil
}

// stormCoherenceProbe is the acceptance check for negative-entry
// coherence: a probe client caches an ENOENT for a path, a second client
// creates that directory, and once the probe has observed the published
// recall sequence (stamped on any DMS response) its next access must
// re-resolve and see the new directory — never serve the stale ENOENT.
func stormCoherenceProbe(cluster *core.Cluster, writer *client.Client) error {
	clock := &stormClock{}
	probe, err := cluster.NewClient(core.ClientConfig{Now: clock.now})
	if err != nil {
		return err
	}
	defer probe.Close()

	if _, err := probe.StatDir("/storm/fresh"); wire.StatusOf(err) != wire.StatusNotFound {
		return fmt.Errorf("coherence probe: want ENOENT, got %v", err)
	}
	trips := probe.Trips()
	if _, err := probe.StatDir("/storm/fresh"); wire.StatusOf(err) != wire.StatusNotFound {
		return fmt.Errorf("coherence probe: want cached ENOENT, got %v", err)
	}
	if probe.Trips() != trips {
		return fmt.Errorf("coherence probe: repeat ENOENT was not served from cache")
	}
	if err := writer.Mkdir("/storm/fresh", 0o755); err != nil {
		return err
	}
	// Any DMS response carries the new recall seq; fetch an unrelated
	// path so the probe observes the publication.
	if _, err := probe.StatDir("/obs"); err != nil {
		return err
	}
	if _, err := probe.StatDir("/storm/fresh"); err != nil {
		return fmt.Errorf("coherence probe: stale ENOENT after observed publish: %v", err)
	}
	return nil
}
