package netsim

import (
	"sync"
	"time"
)

// FaultConfig describes an injected fault on every link to one simulated
// address. Faults are installed with Network.SetFault, apply to existing
// and future connections alike, and can be changed or cleared while
// traffic is flowing — which is how tests and the bench "faults"
// experiment model a flapping server.
//
// The zero value injects nothing.
type FaultConfig struct {
	// Blackhole silently discards every message in both directions.
	// Sends still succeed (as they do on a real network whose far end
	// stopped answering), so only a deadline or health check can detect
	// the outage.
	Blackhole bool
	// DropRequests discards the next N client→server messages.
	DropRequests int
	// DropResponses discards the next N server→client messages.
	DropResponses int
	// DropEveryN discards every Nth message (both directions counted
	// together), modeling a lossy link. Zero disables.
	DropEveryN int
	// ExtraDelay is added to every message's delivery time on top of the
	// link's modeled delay, simulating a slow or congested path.
	ExtraDelay time.Duration
	// DisconnectAfter closes the connection (both ends, like a TCP reset)
	// after N more messages have been accepted for delivery. Zero
	// disables; the countdown is shared by every connection to the
	// address, so exactly one disconnect fires per installation.
	DisconnectAfter int
}

// faultState is the live, mutable fault on one address, shared by every
// pipe dialed to it.
type faultState struct {
	mu  sync.Mutex
	cfg FaultConfig
	// seen counts messages that reached the fault filter, driving
	// DropEveryN and DisconnectAfter.
	seen int
}

// faultVerdict is the filter's decision for one message.
type faultVerdict int

const (
	faultDeliver    faultVerdict = iota // pass (possibly delayed)
	faultDrop                           // silently discard
	faultDisconnect                     // close the connection
)

// filter decides one message's fate. toServer reports the direction
// (client→server when true). The returned delay is extra delivery latency.
func (f *faultState) filter(toServer bool) (faultVerdict, time.Duration) {
	if f == nil {
		return faultDeliver, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen++
	if f.cfg.DisconnectAfter > 0 {
		f.cfg.DisconnectAfter--
		if f.cfg.DisconnectAfter == 0 {
			return faultDisconnect, 0
		}
	}
	if f.cfg.Blackhole {
		return faultDrop, 0
	}
	if toServer && f.cfg.DropRequests > 0 {
		f.cfg.DropRequests--
		return faultDrop, 0
	}
	if !toServer && f.cfg.DropResponses > 0 {
		f.cfg.DropResponses--
		return faultDrop, 0
	}
	if n := f.cfg.DropEveryN; n > 0 && f.seen%n == 0 {
		return faultDrop, 0
	}
	return faultDeliver, f.cfg.ExtraDelay
}

// SetFault installs (or replaces) the fault injected on every connection to
// addr — those already open and those dialed later. Countdown fields
// (DropRequests, DropResponses, DisconnectAfter) restart from the new
// configuration.
func (n *Network) SetFault(addr string, cfg FaultConfig) {
	f := n.fault(addr)
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// ClearFault removes any fault injected on addr.
func (n *Network) ClearFault(addr string) {
	n.SetFault(addr, FaultConfig{})
}

// fault returns addr's fault state, creating an empty one on first use so
// connections share it with later SetFault calls.
func (n *Network) fault(addr string) *faultState {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.faults == nil {
		n.faults = make(map[string]*faultState)
	}
	f, ok := n.faults[addr]
	if !ok {
		f = &faultState{}
		n.faults[addr] = f
	}
	return f
}
