package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"locofs/internal/chash"
	"locofs/internal/fms"
	"locofs/internal/wire"
)

// TestElasticAddRemoveFMS is the end-to-end elasticity check: with a
// workload running, grow the FMS set 4→5 and shrink it 5→4. Exactly the
// keys the ring moves migrate (~1/n on the grow), no existing file ever
// reads as missing (the availability criterion for the migration window),
// and the namespace is identical before and after.
func TestElasticAddRemoveFMS(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4})
	cl := newClient(t, c, ClientConfig{})

	const n = 600
	if err := cl.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%04d", i)
		if err := cl.Create("/d/"+names[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The placement is deterministic given the directory UUID, so the test
	// can compute exactly which files a 4→5 grow must move.
	dirAttr, err := cl.StatDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	oldRing := chash.NewRing(0, 0, 1, 2, 3)
	newRing := chash.NewRing(0, 0, 1, 2, 3, 4)
	expectMoved := 0
	for _, name := range names {
		key := fms.FileKey(dirAttr.UUID, name)
		if oldRing.Locate(key) != newRing.Locate(key) {
			expectMoved++
		}
	}
	if expectMoved == 0 || expectMoved > n/2 {
		t.Fatalf("degenerate placement: %d/%d keys move", expectMoved, n)
	}

	// Background workload: stat existing files continuously. Any ENOENT is
	// an availability violation — every one of these files exists for the
	// whole test.
	stop := make(chan struct{})
	var ops, violations atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wcl := newClient(t, c, ClientConfig{})
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(i*7+w*131)%n]
				if _, err := wcl.StatFile("/d/" + name); err != nil {
					if wire.StatusOf(err) == wire.StatusNotFound {
						violations.Add(1)
						t.Errorf("worker %d: ENOENT for existing file %s", w, name)
					}
				} else {
					ops.Add(1)
				}
			}
		}(w)
	}

	// Grow 4→5.
	rep, err := c.AddFMS()
	if err != nil {
		t.Fatalf("AddFMS: %v", err)
	}
	if rep.Total != n {
		t.Errorf("grow scanned %d files, want %d", rep.Total, n)
	}
	if rep.Moved != expectMoved {
		t.Errorf("grow moved %d files, want exactly %d", rep.Moved, expectMoved)
	}
	frac := float64(rep.Moved) / float64(rep.Total)
	if frac < 0.08 || frac > 0.40 {
		t.Errorf("grow moved fraction %.3f implausible for 1/5 ideal", frac)
	}
	if rep.FromEpoch != 1 || rep.ToEpoch != 3 {
		t.Errorf("grow epochs %d->%d, want 1->3", rep.FromEpoch, rep.ToEpoch)
	}

	// Every file reachable after the grow, from the old client and a fresh
	// one that dials the grown cluster directly.
	fresh := newClient(t, c, ClientConfig{})
	if got := fresh.FMSCount(); got != 5 {
		t.Errorf("fresh client sees %d FMS, want 5", got)
	}
	for _, name := range names {
		if _, err := cl.StatFile("/d/" + name); err != nil {
			t.Fatalf("after grow, old client lost %s: %v", name, err)
		}
		if _, err := fresh.StatFile("/d/" + name); err != nil {
			t.Fatalf("after grow, fresh client lost %s: %v", name, err)
		}
	}
	if ents, err := fresh.Readdir("/d"); err != nil || len(ents) != n {
		t.Errorf("after grow, readdir = %d entries err=%v, want %d", len(ents), err, n)
	}

	// Shrink 5→4: exactly the files that just landed on server 4 drain back.
	rep2, err := c.RemoveFMS()
	if err != nil {
		t.Fatalf("RemoveFMS: %v", err)
	}
	if rep2.Moved != expectMoved {
		t.Errorf("shrink moved %d files, want exactly %d", rep2.Moved, expectMoved)
	}
	if rep2.Total != n {
		t.Errorf("shrink scanned %d files, want %d", rep2.Total, n)
	}

	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d availability violations (ENOENT for existing files) during migration", v)
	}
	if ops.Load() == 0 {
		t.Error("background workload performed no successful operations")
	}

	// The namespace is exactly what it was.
	for _, name := range names {
		if _, err := cl.StatFile("/d/" + name); err != nil {
			t.Fatalf("after shrink, lost %s: %v", name, err)
		}
	}
	if ents, err := cl.Readdir("/d"); err != nil || len(ents) != n {
		t.Errorf("after shrink, readdir = %d entries err=%v, want %d", len(ents), err, n)
	}
	if got := c.Epoch(); got != 5 {
		t.Errorf("cluster epoch = %d, want 5", got)
	}
}

// TestElasticMutationsDuringWindow: mutations issued while keys are
// migrating land on the surviving copy — a chmod racing the window is
// never lost, and creates/removes during the window behave normally.
func TestElasticMutationsDuringWindow(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 3})
	cl := newClient(t, c, ClientConfig{})
	if err := cl.Mkdir("/m", 0o755); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := cl.Create(fmt.Sprintf("/m/f%03d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Mutate concurrently with the grow.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	mcl := newClient(t, c, ClientConfig{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := mcl.Chmod(fmt.Sprintf("/m/f%03d", i%n), 0o600); err != nil {
				t.Errorf("chmod during window: %v", err)
				return
			}
		}
	}()

	if _, err := c.AddFMS(); err != nil {
		t.Fatalf("AddFMS: %v", err)
	}
	close(stop)
	wg.Wait()

	// Post-window creates and removes route to the new owners.
	if err := cl.Create("/m/new", 0o644); err != nil {
		t.Fatalf("create after grow: %v", err)
	}
	if err := cl.Remove("/m/new"); err != nil {
		t.Fatalf("remove after grow: %v", err)
	}
	if _, err := cl.StatFile("/m/new"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("removed file stat = %v, want ENOENT", err)
	}
	// Every chmod that reported success must be durable: no file may have
	// reverted to its create mode after migration settles.
	for i := 0; i < n; i++ {
		a, err := cl.StatFile(fmt.Sprintf("/m/f%03d", i))
		if err != nil {
			t.Fatalf("lost /m/f%03d: %v", i, err)
		}
		if m := a.Mode & 0o777; m != 0o600 && m != 0o644 {
			t.Errorf("/m/f%03d mode = %o, want 600 or 644", i, m)
		}
	}
}
