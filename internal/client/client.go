// Package client implements LocoLib, the LocoFS client library (§3.1).
//
// LocoLib routes directory operations to the single Directory Metadata
// Server, file metadata operations to the File Metadata Server chosen by
// consistent-hashing directory_uuid + file_name, and data operations
// straight to the object store — so the common path of every operation is
// one or two round trips. A client-side directory inode cache with leases
// (§3.2.2) removes the DMS hop from repeated operations in the same
// directory.
package client

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/chash"
	"locofs/internal/flight"
	"locofs/internal/fms"
	"locofs/internal/fspath"
	"locofs/internal/layout"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// Config describes the cluster a client connects to and the client's
// identity and caching behavior.
type Config struct {
	// Dialer connects to the addresses below (simulated or TCP).
	Dialer netsim.Dialer
	// Link is the modeled network link used for virtual-time accounting
	// (see rpc.Client.SetLink). Zero models a co-located deployment.
	Link netsim.LinkConfig
	// DMSAddr is the directory metadata server address. Against a sharded
	// DMS this is the bootstrap endpoint — any replica of any partition —
	// from which the client fetches the partition map.
	DMSAddr string
	// DMSSharded declares the DMS partitioned: Dial fetches the partition
	// map synchronously before returning (failing if no replica serves
	// one), so the first operation routes correctly instead of discovering
	// the sharding through an EWRONGPART round trip. Leave false for an
	// unsharded DMS; the client then also adopts a map pushed via response
	// headers, just lazily.
	DMSSharded bool
	// FMSAddrs lists file metadata servers; the slice index is the server
	// ID used by the consistent-hash ring (unless FMSIDs overrides it).
	FMSAddrs []string
	// FMSIDs optionally assigns each FMS its stable ring ID (parallel to
	// FMSAddrs). Ring IDs must stay stable across membership changes — a
	// grown cluster keeps existing servers' arcs only if their IDs do not
	// shift — so clusters that may scale online pass explicit IDs. Nil
	// means the slice index, the historical static-topology behavior.
	FMSIDs []int
	// OSSAddrs lists object store servers (at least one).
	OSSAddrs []string
	// DisableCache turns off the client directory cache (LocoFS-NC).
	DisableCache bool
	// Lease overrides the default 30 s cache lease. In coherent mode the
	// server's granted duration wins; this value only governs the TTL-only
	// fallback (see DisableLeaseCoherence).
	Lease time.Duration
	// DisableLeaseCoherence reverts the directory cache to the paper's
	// TTL-only semantics: entries are trusted for the configured lease with
	// no staleness detection, no negative entries and no listing cache.
	// The default (false) is lease-coherent caching: the DMS grants leases
	// on lookups, stamps its recall sequence on every response, and the
	// client drops exactly the directories that changed (DESIGN.md §14).
	DisableLeaseCoherence bool
	// DisableNegativeCache turns off negative-entry caching (ENOENT
	// results) while keeping lease coherence for positive entries.
	DisableNegativeCache bool
	// HotEntries enables the hot-entry tier: the client ranks its most
	// frequently resolved directories with a space-saving sketch, keeps the
	// top HotEntries of them on stretched leases, and refreshes them in the
	// background. Zero disables the tier. Requires lease coherence.
	HotEntries int
	// HotLeaseFactor is the lease stretch for hot entries (default
	// DefaultHotLeaseFactor, clamped to the server's grant horizon).
	HotLeaseFactor int
	// HotRefreshInterval is the hot-tier background refresh period
	// (default DefaultHotRefreshInterval).
	HotRefreshInterval time.Duration
	// UID and GID are the credentials stamped on operations.
	UID, GID uint32
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics receives the client's per-op telemetry (round-trip
	// histograms and call counters). Nil means a private registry,
	// reachable via Client.Metrics; passing a shared registry aggregates
	// several clients into one view (e.g. a benchmark fleet).
	Metrics *telemetry.Registry
	// SlowThreshold enables slow-call logging: any RPC whose wall-clock
	// round trip meets or exceeds it is logged with its trace ID and
	// server address. Zero disables logging.
	SlowThreshold time.Duration
	// SerialFanOut disables parallel multi-server fan-out: rmdir probes,
	// readdir listings, block deletes and Close visit one server at a
	// time, as the pre-parallel client did. Kept as the benchmark
	// baseline (see internal/bench's fan-out experiment).
	SerialFanOut bool
	// DisableBatchRPC disables wire-level request batching (wire.OpBatch):
	// every sub-request travels as its own framed message. In coherent
	// caching mode this also costs coherence catch-ups an extra DMS trip —
	// the OpLeaseRecall fetch travels standalone instead of riding along
	// with the next lookup.
	DisableBatchRPC bool
	// CacheEntries bounds the directory cache; on overflow the oldest
	// entries are evicted. Zero means DefaultCacheEntries, negative means
	// unbounded.
	CacheEntries int
	// Tracer receives client-side spans: a root span per logical operation,
	// a child span per RPC (annotated with the server address and retries),
	// and a child span per fan-out branch. Nil disables client tracing; a
	// tracer shared with in-process servers yields complete trees.
	Tracer *trace.Tracer
	// Flight receives client-side flight-recorder events: breaker
	// transitions, retries and coordinator migration batches. Nil disables
	// emission; a journal shared with in-process servers yields one
	// cluster-wide timeline.
	Flight *flight.Journal
	// OpTimeout bounds each RPC attempt; an attempt exceeding it fails with
	// wire.StatusDeadline and the connection is replaced. Zero disables
	// per-attempt deadlines (the historical behavior).
	OpTimeout time.Duration
	// Retry governs automatic retries of failed attempts. The zero value
	// means DefaultRetry (one immediate retry); Max < 0 disables retries.
	Retry RetryPolicy
	// Breaker configures the per-endpoint circuit breaker. The zero value
	// disables it.
	Breaker BreakerConfig
}

// DialOption mutates a Config before Dial uses it; see WithOpTimeout,
// WithRetry and WithBreaker. Options exist so callers holding a canonical
// cluster Config can layer fault-tolerance policy on top without copying
// and editing the struct.
type DialOption func(*Config)

// WithOpTimeout sets Config.OpTimeout, the per-attempt RPC deadline.
func WithOpTimeout(d time.Duration) DialOption {
	return func(c *Config) { c.OpTimeout = d }
}

// WithRetry sets Config.Retry, the automatic retry policy.
func WithRetry(p RetryPolicy) DialOption {
	return func(c *Config) { c.Retry = p }
}

// WithBreaker sets Config.Breaker, the per-endpoint circuit breaker.
func WithBreaker(b BreakerConfig) DialOption {
	return func(c *Config) { c.Breaker = b }
}

// Client is one LocoLib instance. It is safe for concurrent use.
type Client struct {
	dms   *endpoint
	oss   []*endpoint
	oring *chash.Ring
	cache *dirCache // nil when disabled
	uid   uint32
	gid   uint32

	// FMS routing is epoch-versioned (see view.go): view holds the
	// immutable current picture, eps is the by-address connection registry
	// feeding it, maxEpoch the highest membership epoch seen on the wire,
	// and refreshing collapses concurrent async refreshes into one.
	view       atomic.Pointer[fmsView]
	viewMu     sync.Mutex // serializes view installs
	epMu       sync.Mutex
	eps        map[string]*endpoint
	dialFMS    func(addr string) (*endpoint, error)
	maxEpoch   atomic.Uint64
	refreshing atomic.Bool

	// DMS partition routing (see route.go): pmap holds the installed
	// partition map (nil against an unsharded DMS — the zero-cost legacy
	// mode), dmsEps is the by-address DMS connection registry (the
	// bootstrap endpoint is seeded under dmsAddr), maxPVer the highest map
	// version seen on the wire, and pmRefreshing collapses concurrent
	// async map refreshes into one.
	pmap         atomic.Pointer[wire.PartMap]
	pmapMu       sync.Mutex // serializes map installs
	pmapFetchMu  sync.Mutex // serializes map fetches
	pmFetchGen   atomic.Uint64
	maxPVer      atomic.Uint64
	pmRefreshing atomic.Bool
	dmsEpMu      sync.Mutex
	dmsEps       map[string]*endpoint
	dialDMSPart  func(addr string, pid uint32) (*endpoint, error)
	dmsAddr      string
	res          *resilience

	serialFanOut bool
	disableBatch bool
	// parSavedNS accumulates the virtual time parallel fan-out groups
	// saved over serial execution (per group: sum of branch times minus
	// the slowest branch). Cost subtracts it, so the deterministic
	// virtual-time model sees concurrency.
	parSavedNS atomic.Int64

	// hotStop/hotDone bracket the hot-tier background refresher's
	// lifetime; nil when the tier is disabled.
	hotStop chan struct{}
	hotDone chan struct{}

	telem     *clientTelem
	tracer    *trace.Tracer   // nil when tracing is disabled
	label     telemetry.Label // gauge identity, unregistered by Close
	traceBase uint64          // client id in the top 16 bits of every trace
	traceCtr  atomic.Uint64   // per-operation sequence in the low 48 bits
}

// opCtx carries one logical file-system operation's identity through the
// client: the trace ID stamped on every RPC the operation issues, the
// client-side root span (nil when tracing is disabled or sampled out —
// every use is nil-safe, so the disabled path stays allocation-free), and
// the caller's context (nil on the legacy context-free API — also
// nil-safe everywhere, so the legacy path pays nothing).
type opCtx struct {
	tid uint64
	sp  *trace.Span
	ctx context.Context
}

// startOp mints the opCtx for one logical operation, opening its client
// root span when tracing is enabled.
func (c *Client) startOp(name string) opCtx {
	oc := opCtx{tid: c.newTrace()}
	oc.sp = c.tracer.StartSpan(oc.tid, 0, name, "client")
	return oc
}

// startOpCtx is startOp carrying the caller's context into every RPC the
// operation issues (per-attempt deadlines, retry waits — see the *Context
// method docs). context.Background collapses to the context-free path so
// the delegating legacy methods stay byte-identical in behavior.
func (c *Client) startOpCtx(ctx context.Context, name string) opCtx {
	oc := c.startOp(name)
	if ctx != nil && ctx != context.Background() {
		oc.ctx = ctx
	}
	return oc
}

// finish closes the operation's (or branch's) span, recording err as the
// span status.
func (oc opCtx) finish(err error) {
	if oc.sp == nil {
		return
	}
	if err != nil {
		oc.sp.SetStatus(wire.StatusOf(err).String())
	}
	oc.sp.Finish()
}

// branch derives the opCtx for fan-out branch i: same trace, with a child
// span named label when the parent operation carries one.
func (oc opCtx) branch(label string, i int) opCtx {
	boc := opCtx{tid: oc.tid}
	if oc.sp != nil {
		boc.sp = oc.sp.StartChild(label)
		boc.sp.SetSub(i)
	}
	return boc
}

// nextClientID distinguishes trace IDs of clients within one process.
var nextClientID atomic.Uint64

// newTrace mints the trace ID for one logical file-system operation; every
// RPC the operation issues carries it, so slow-request logs on different
// servers can be correlated.
func (c *Client) newTrace() uint64 {
	return c.traceBase | (c.traceCtr.Add(1) & (1<<48 - 1))
}

// Metrics returns the registry holding this client's per-op round-trip
// histograms and call counters (see rpc.MetricRTT, rpc.MetricCalls).
func (c *Client) Metrics() *telemetry.Registry { return c.telem.reg }

// Dial connects to every server in cfg — with any opts applied on top —
// and returns a ready client.
func Dial(cfg Config, opts ...DialOption) (*Client, error) {
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Dialer == nil {
		return nil, fmt.Errorf("client: nil dialer")
	}
	if len(cfg.FMSAddrs) == 0 || len(cfg.OSSAddrs) == 0 {
		return nil, fmt.Errorf("client: need at least one FMS and one OSS")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Client{
		uid:          cfg.UID,
		gid:          cfg.GID,
		serialFanOut: cfg.SerialFanOut,
		disableBatch: cfg.DisableBatchRPC,
		telem:        &clientTelem{reg: reg, slow: cfg.SlowThreshold, fl: cfg.Flight},
		tracer:       cfg.Tracer,
		traceBase:    (nextClientID.Add(1) & 0xffff) << 48,
	}
	res := newResilience(cfg.OpTimeout, cfg.Retry, cfg.Breaker, cfg.Now)
	c.res = res
	dial := func(addr string) (*endpoint, error) {
		return dialEndpoint(cfg.Dialer, addr, cfg.Link, c.telem, res, c.observeEpoch, c.observeLease, nil)
	}
	c.eps = make(map[string]*endpoint)
	c.dialFMS = dial
	// DMS endpoints bind their lease hook to the partition they serve (so
	// recall sequences from different partitions land in different cache
	// watermark sources) and report partition-map versions to the router.
	c.dmsEps = make(map[string]*endpoint)
	c.dmsAddr = cfg.DMSAddr
	c.dialDMSPart = func(addr string, pid uint32) (*endpoint, error) {
		return dialEndpoint(cfg.Dialer, addr, cfg.Link, c.telem, res, c.observeEpoch,
			func(seq uint64) { c.observeLeaseFrom(pid, seq) }, c.observePMap)
	}
	var err error
	if c.dms, err = c.dmsEndpointAt(cfg.DMSAddr, 0); err != nil {
		return nil, fmt.Errorf("client: dial DMS: %w", err)
	}
	if cfg.FMSIDs != nil && len(cfg.FMSIDs) != len(cfg.FMSAddrs) {
		c.Close()
		return nil, fmt.Errorf("client: FMSIDs/FMSAddrs length mismatch")
	}
	// The initial view is epoch 0 — a static topology. A cluster running
	// the membership protocol stamps its epoch on the first response and
	// the client refreshes to the real membership from there.
	members := make([]fmsMember, 0, len(cfg.FMSAddrs))
	ids := make([]int, 0, len(cfg.FMSAddrs))
	for i, a := range cfg.FMSAddrs {
		ep, err := c.fmsEndpoint(a)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dial FMS %s: %w", a, err)
		}
		id := i
		if cfg.FMSIDs != nil {
			id = cfg.FMSIDs[i]
		}
		members = append(members, fmsMember{id: int32(id), ep: ep})
		ids = append(ids, id)
	}
	c.view.Store(&fmsView{cur: members, ring: chash.NewRing(0, ids...)})
	for _, a := range cfg.OSSAddrs {
		cl, err := dial(a)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dial OSS %s: %w", a, err)
		}
		c.oss = append(c.oss, cl)
	}
	oids := make([]int, len(c.oss))
	for i := range oids {
		oids[i] = i
	}
	c.oring = chash.NewRing(0, oids...)
	// The client label keeps several clients sharing one registry (a
	// benchmark fleet) from clobbering each other's gauges and counters.
	c.label = telemetry.L("client", fmt.Sprintf("%d", c.traceBase>>48))
	if !cfg.DisableCache {
		coherent := !cfg.DisableLeaseCoherence
		c.cache = newDirCache(cfg.Lease, cfg.Now, cfg.CacheEntries,
			coherent, !cfg.DisableNegativeCache, newCacheMetrics(reg, c.label))
		if coherent && cfg.HotEntries > 0 {
			c.cache.enableHot(cfg.HotEntries, cfg.HotLeaseFactor)
			interval := cfg.HotRefreshInterval
			if interval <= 0 {
				interval = DefaultHotRefreshInterval
			}
			c.hotStop = make(chan struct{})
			c.hotDone = make(chan struct{})
			go c.hotRefreshLoop(cfg.HotEntries, interval, cfg.Now)
		}
	}
	reg.GaugeFunc(MetricInflight, func() float64 {
		return float64(c.telem.inflight.Load())
	}, c.label)
	if c.cache != nil {
		reg.GaugeFunc(MetricDirCacheSize, func() float64 {
			return float64(c.cache.size())
		}, c.label)
	}
	// Against a declared-sharded DMS, fetch the partition map before the
	// first operation: routing is then correct from the start and the
	// membership fetch below already goes to the right leader.
	if cfg.DMSSharded {
		if err := c.refreshPartMap(opCtx{}, ""); err != nil {
			c.Close()
			return nil, fmt.Errorf("client: fetch partition map: %w", err)
		}
		if c.pmap.Load() == nil {
			c.Close()
			return nil, fmt.Errorf("client: DMS at %s serves no partition map", cfg.DMSAddr)
		}
	}
	// Align the view with the cluster's installed membership (if any) up
	// front: the static config above may be behind a cluster that has
	// already grown or shrunk, and a synchronous refresh here means the
	// first workload response never triggers a background one — keeping
	// per-operation trip counts deterministic.
	if err := c.refreshView(opCtx{}); err != nil {
		c.Close()
		return nil, fmt.Errorf("client: fetch membership: %w", err)
	}
	return c, nil
}

// Close tears down every connection, in parallel across servers, and
// unregisters the client's gauges so shared registries don't accumulate
// dead per-client series.
func (c *Client) Close() error {
	if c.hotStop != nil {
		close(c.hotStop)
		<-c.hotDone
		c.hotStop = nil
	}
	c.telem.reg.Unregister(MetricInflight, c.label)
	c.telem.reg.Unregister(MetricDirCacheSize, c.label)
	if c.cache != nil {
		c.cache.met.unregister(c.telem.reg, c.label)
	}
	fmsEps := c.fmsEndpoints()
	dmsEps := c.dmsEndpoints()
	eps := make([]*endpoint, 0, len(dmsEps)+len(fmsEps)+len(c.oss))
	eps = append(eps, dmsEps...)
	eps = append(eps, fmsEps...)
	eps = append(eps, c.oss...)
	c.fanOut(opCtx{}, "close", len(eps), func(_ opCtx, i int) (time.Duration, error) {
		eps[i].Close()
		return 0, nil
	})
	return nil
}

// Trips returns the total network round trips issued by this client, the
// unit the paper's latency figures are normalized in.
func (c *Client) Trips() uint64 {
	var n uint64
	for _, cl := range c.dmsEndpoints() {
		n += cl.Trips()
	}
	for _, cl := range c.fmsEndpoints() {
		n += cl.Trips()
	}
	for _, cl := range c.oss {
		n += cl.Trips()
	}
	return n
}

// Cost returns the client's cumulative modeled time across every call:
// link delays plus server-reported service times, minus the time parallel
// fan-out groups saved over issuing the same calls serially (each group
// costs its slowest branch, not the sum). Per-operation virtual latency is
// the delta of Cost around the operation.
func (c *Client) Cost() time.Duration {
	var d time.Duration
	for _, cl := range c.dmsEndpoints() {
		d += cl.VirtualTime()
	}
	for _, cl := range c.fmsEndpoints() {
		d += cl.VirtualTime()
	}
	for _, cl := range c.oss {
		d += cl.VirtualTime()
	}
	return d - time.Duration(c.parSavedNS.Load())
}

// CacheStats returns directory-cache inode hits and misses (zero when
// disabled).
func (c *Client) CacheStats() (hits, misses uint64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.stats()
}

// CacheDetail returns the full directory-cache snapshot: per-kind hit
// counters, stale misses, occupancy and the coherence watermarks. Zero
// value when the cache is disabled.
func (c *Client) CacheDetail() CacheDetail {
	if c.cache == nil {
		return CacheDetail{}
	}
	return c.cache.detail()
}

// FMSCount returns the number of file metadata servers in the current
// membership view.
func (c *Client) FMSCount() int { return len(c.view.Load().cur) }

// Epoch returns the client's installed membership epoch (zero on a static
// topology).
func (c *Client) Epoch() uint64 { return c.view.Load().epoch }

// ossFor returns the object store endpoint owning block blk of u.
func (c *Client) ossFor(u uuid.UUID, blk uint64) *endpoint {
	return c.oss[c.oring.Locate(objstore.BlockKey(u, blk))]
}

// resolveDir returns the d-inode of a cleaned directory path, from cache if
// possible — including a cached negative entry, which answers ENOENT with
// zero trips — otherwise via one DMS lookup (which returns the whole
// ancestor chain; every link is cached under its granted lease). When the
// cache has observed recalls it has not applied, the missed entries are
// fetched in the same round trip as the lookup, so a coherence catch-up
// costs exactly one DMS trip — the same as the plain miss (with batching
// disabled the recall fetch is a standalone second trip). oc is the
// logical operation's context; its span is annotated with the cache
// outcome.
func (c *Client) resolveDir(cleaned string, oc opCtx) (layout.DirInode, error) {
	if c.cache != nil {
		if ino, ok := c.cache.get(cleaned); ok {
			if oc.sp != nil {
				oc.sp.Annotate("cache=hit " + cleaned)
			}
			return ino, nil
		}
		if c.cache.negHit(cleaned) {
			if oc.sp != nil {
				oc.sp.Annotate("cache=neg " + cleaned)
			}
			return nil, wire.StatusNotFound.Err()
		}
		if oc.sp != nil {
			oc.sp.Annotate("cache=miss " + cleaned)
		}
	}
	enc := wire.GetEnc()
	body := enc.Str(cleaned).U32(c.uid).U32(c.gid).Bytes()
	var (
		st         wire.Status
		resp       []byte
		src        uint32
		err        error
		recallResp []byte
	)
	// The recall catch-up is per-source: probe the route first so `since`
	// is the watermark of the partition this lookup will land on. If a
	// retry inside dmsCall reroutes to a different partition, the recall
	// response is still applied under the source that actually served it —
	// recall entries are genuine for their server regardless of the
	// watermark they were requested from (a stale `since` at worst costs a
	// reset).
	var since uint64
	var behind bool
	if _, psrc, rerr := c.routeDMS(cleaned, false); rerr == nil {
		since, behind = c.cacheBehind(psrc)
	}
	if behind && !c.disableBatch {
		var resps []wire.SubResp
		resps, src, err = c.dmsBatch(oc, cleaned, false, []wire.SubReq{
			{Op: wire.OpLookupDir, Body: body},
			{Op: wire.OpLeaseRecall, Body: wire.EncodeRecallReq(since)},
		})
		if err == nil {
			st, resp = resps[0].Status, resps[0].Body
			if resps[1].Status == wire.StatusOK {
				recallResp = resps[1].Body
			}
		}
	} else {
		st, resp, src, err = c.dmsCall(oc, cleaned, false, wire.OpLookupDir, body)
		if err == nil && behind {
			// Batching is off, so the recall fetch cannot ride along with
			// the lookup; issue it standalone. One extra trip, but without
			// it appliedSeq would never advance and every previously cached
			// entry would stay degraded to a miss until individually
			// re-fetched.
			rst, rbody, rsrc, rerr := c.dmsCall(oc, cleaned, false, wire.OpLeaseRecall, wire.EncodeRecallReq(since))
			if rerr == nil && rst == wire.StatusOK {
				recallResp = rbody
				src = rsrc
			}
		}
	}
	enc.Free()
	if err != nil {
		return nil, err
	}
	// Cache the lookup result first, then apply the recalls: the fresh
	// entries carry their grant sequence, so any newer recall in the batch
	// still drops them, while older ones leave them alone.
	ino, rerr := c.finishLookup(src, cleaned, st, resp)
	if recallResp != nil {
		c.applyRecallResp(src, recallResp)
	}
	return ino, rerr
}

// finishLookup turns an OpLookupDir outcome served by partition src into
// the resolved inode, caching the ancestor chain on success and the
// negative entry (under its grant) on ENOENT.
func (c *Client) finishLookup(src uint32, cleaned string, st wire.Status, resp []byte) (layout.DirInode, error) {
	if st == wire.StatusNotFound {
		if c.cache != nil {
			if g := wire.DecodeLeaseGrant(wire.NewDec(resp)); g.Valid() {
				c.cache.putNegFrom(src, cleaned, g)
			}
		}
		return nil, st.Err()
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	return c.cacheLookupChainFrom(src, cleaned, resp)
}

// cacheLookupChainFrom decodes an OpLookupDir response served by partition
// src — the ancestor chain of cleaned plus the trailing lease grant —
// caching every link under the grant (keyed to src's watermarks) and
// returning the target's inode.
func (c *Client) cacheLookupChainFrom(src uint32, cleaned string, resp []byte) (layout.DirInode, error) {
	d := wire.NewDec(resp)
	n := d.U32()
	type link struct {
		path string
		ino  layout.DirInode
	}
	links := make([]link, 0, n)
	for i := uint32(0); i < n; i++ {
		p := d.Str()
		ino := layout.DirInode(d.Blob())
		if d.Err() != nil {
			return nil, d.Err()
		}
		links = append(links, link{p, ino})
	}
	g := wire.DecodeLeaseGrant(d)
	var target layout.DirInode
	for _, l := range links {
		if c.cache != nil {
			c.cache.putFrom(src, l.path, l.ino, g)
		}
		if l.path == cleaned {
			target = l.ino
		}
	}
	if target == nil {
		return nil, wire.StatusIO.Err()
	}
	return target, nil
}

// splitPath cleans path and resolves its parent directory.
func (c *Client) splitPath(path string, oc opCtx) (parent layout.DirInode, cleaned, name string, err error) {
	cleaned, err = fspath.Clean(path)
	if err != nil {
		return nil, "", "", wire.StatusInval.Err()
	}
	dir, name := fspath.Split(cleaned)
	if name == "" {
		return nil, "", "", wire.StatusInval.Err()
	}
	parent, err = c.resolveDir(dir, oc)
	return parent, cleaned, name, err
}

// Kind discriminates what an Attr describes.
type Kind uint8

const (
	// KindFile is a regular file.
	KindFile Kind = iota
	// KindDir is a directory.
	KindDir
)

// Attr is the stat result for a file or directory. Kind tells which; IsDir
// is the same information as a bool, kept for existing callers.
type Attr struct {
	Kind      Kind
	IsDir     bool
	Mode      uint32
	UID, GID  uint32
	Size      uint64
	BlockSize uint32
	CTime     int64
	MTime     int64
	ATime     int64
	UUID      uuid.UUID
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode uint32) error {
	return c.MkdirContext(context.Background(), path, mode)
}

// MkdirContext is Mkdir under ctx (see the package locofs docs on how a
// context bounds an operation's RPC attempts and retry waits).
func (c *Client) MkdirContext(ctx context.Context, path string, mode uint32) (err error) {
	oc := c.startOpCtx(ctx, "Mkdir")
	defer func() { oc.finish(err) }()
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	body := wire.NewEnc().Str(cleaned).U32(mode).U32(c.uid).U32(c.gid).Bytes()
	st, resp, src, err := c.dmsCall(oc, cleaned, false, wire.OpMkdir, body)
	if err != nil {
		return err
	}
	if st == wire.StatusOK && c.cache != nil {
		// Self-apply: drop the negative entry and the parent's listing this
		// creation invalidates, and account the published recalls (carried
		// in the response trailer) as applied — no recall fetch needed for
		// the client's own writes.
		d := wire.NewDec(resp)
		d.UUID() // created directory's uuid
		last, n := decodePub(d)
		c.cache.selfCreatedFrom(src, cleaned, last, n)
	}
	return st.Err()
}

// Rmdir removes an empty directory. LocoFS cannot know from the DMS alone
// whether any FMS still holds files of the directory, so the client probes
// every FMS first — the fan-out the paper charges rmdir with (§4.2.1).
func (c *Client) Rmdir(path string) error {
	return c.RmdirContext(context.Background(), path)
}

// RmdirContext is Rmdir under ctx.
func (c *Client) RmdirContext(ctx context.Context, path string) (err error) {
	oc := c.startOpCtx(ctx, "Rmdir")
	defer func() { oc.finish(err) }()
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	ino, err := c.resolveDir(cleaned, oc)
	if err != nil {
		return err
	}
	// Probe every FMS in parallel; the first non-empty (or failed) probe
	// cancels the branches not yet started, so a busy directory answers at
	// the speed of its first refusal rather than a full serial sweep.
	// During a migration window the probe set is the union of the current
	// and previous FMS sets — a not-yet-migrated file must still veto the
	// rmdir.
	fmsEps := c.view.Load().endpoints()
	probe := wire.NewEnc().UUID(ino.UUID()).Bytes()
	err = c.fanOut(oc, "probe", len(fmsEps), func(boc opCtx, i int) (time.Duration, error) {
		st, resp, virt, err := fmsEps[i].CallV(boc, wire.OpDirHasFiles, probe)
		if err != nil {
			return virt, err
		}
		if st != wire.StatusOK {
			return virt, st.Err()
		}
		if wire.NewDec(resp).Bool() {
			return virt, wire.StatusNotEmpty.Err()
		}
		return virt, nil
	})
	if err != nil {
		return err
	}
	body := wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).Bytes()
	st, resp, src, err := c.dmsCall(oc, cleaned, false, wire.OpRmdir, body)
	if err != nil {
		return err
	}
	if st == wire.StatusOK && c.cache != nil {
		last, n := decodePub(wire.NewDec(resp))
		c.cache.selfRemovedFrom(src, cleaned, last, n)
	}
	return st.Err()
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name  string
	IsDir bool
	UUID  uuid.UUID
}

// ReaddirPageSize is the number of entries fetched per server round trip
// when listing a directory; it bounds response sizes for huge directories.
const ReaddirPageSize = 1024

// decodeEntryPage parses a paged readdir response. remaining is the
// server's exact count of entries beyond this page, or -1 when the server
// did not report one (more then only says whether any remain). g is the
// trailing listing lease grant, present (Valid) only on a complete DMS
// subdirectory listing.
func decodeEntryPage(resp []byte, isDir bool) (ents []DirEntry, more bool, remaining int, g wire.LeaseGrant, err error) {
	d := wire.NewDec(resp)
	n := d.U32()
	more = d.Bool()
	ents = make([]DirEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		name := d.Str()
		u := d.UUID()
		if d.Err() != nil {
			return nil, false, 0, g, d.Err()
		}
		ents = append(ents, DirEntry{Name: name, IsDir: isDir, UUID: u})
	}
	remaining = -1
	if d.Remaining() > 0 { // optional trailing exact remaining count
		remaining = int(d.U32())
		if d.Err() != nil {
			return nil, false, 0, g, d.Err()
		}
	}
	g = wire.DecodeLeaseGrant(d)
	return ents, more, remaining, g, nil
}

// resolveForReaddir resolves the directory for a listing. On a cache miss
// with batching enabled, the first subdirectory page rides along with the
// lookup in one wire.OpBatch message — the two DMS round trips a cold
// readdir used to open with collapse into one. seeded reports whether
// first/more/remaining carry a prefetched page.
func (c *Client) resolveForReaddir(cleaned string, oc opCtx) (ino layout.DirInode, first []DirEntry, more bool, remaining int, seeded bool, err error) {
	if c.cache != nil {
		if cached, ok := c.cache.get(cleaned); ok {
			if ents, lok := c.cache.getList(cleaned); lok {
				// Both the inode and the complete subdirectory listing are
				// cached: the DMS branch of this readdir costs zero trips.
				if oc.sp != nil {
					oc.sp.Annotate("cache=hit+list " + cleaned)
				}
				return cached, ents, false, 0, true, nil
			}
			if oc.sp != nil {
				oc.sp.Annotate("cache=hit " + cleaned)
			}
			return cached, nil, false, 0, false, nil
		}
		if c.cache.negHit(cleaned) {
			if oc.sp != nil {
				oc.sp.Annotate("cache=neg " + cleaned)
			}
			return nil, nil, false, 0, false, wire.StatusNotFound.Err()
		}
		if oc.sp != nil {
			oc.sp.Annotate("cache=miss " + cleaned)
		}
	}
	if c.disableBatch {
		ino, err = c.resolveDir(cleaned, oc)
		return ino, nil, false, 0, false, err
	}
	if pm := c.partMap(); pm != nil && pm.Locate(cleaned) != pm.LocateList(cleaned) {
		// cleaned is a partition cut: its inode lives with its parent's
		// partition while its listing lives on the partition it roots, so
		// the lookup and the first page cannot share one batch. Resolve
		// plainly; the listing pages go to their own leader unseeded.
		ino, err = c.resolveDir(cleaned, oc)
		return ino, nil, false, 0, false, err
	}
	lookup := wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).Bytes()
	page := wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).
		Str("").U32(ReaddirPageSize).U32(0).Bytes()
	subs := []wire.SubReq{
		{Op: wire.OpLookupDir, Body: lookup},
		{Op: wire.OpReaddirSubdirs, Body: page},
	}
	recallAt := -1
	if _, psrc, rerr := c.routeDMS(cleaned, false); rerr == nil {
		if since, behind := c.cacheBehind(psrc); behind {
			recallAt = len(subs)
			subs = append(subs, wire.SubReq{Op: wire.OpLeaseRecall, Body: wire.EncodeRecallReq(since)})
		}
	}
	resps, src, err := c.dmsBatch(oc, cleaned, false, subs)
	if err != nil {
		return nil, nil, false, 0, false, err
	}
	if recallAt >= 0 && resps[recallAt].Status == wire.StatusOK {
		defer c.applyRecallResp(src, resps[recallAt].Body)
	}
	if ino, err = c.finishLookup(src, cleaned, resps[0].Status, resps[0].Body); err != nil {
		return nil, nil, false, 0, false, err
	}
	if st := resps[1].Status; st != wire.StatusOK {
		return nil, nil, false, 0, false, st.Err()
	}
	var g wire.LeaseGrant
	if first, more, remaining, g, err = decodeEntryPage(resps[1].Body, true); err != nil {
		return nil, nil, false, 0, false, err
	}
	if c.cache != nil && g.Valid() && !more {
		c.cache.putListFrom(src, cleaned, first, g)
	}
	return ino, first, more, remaining, true, nil
}

// Readdir lists a directory: subdirectory entries from the DMS plus file
// entries from every FMS, fetched in size-bounded pages, merged and
// name-sorted. The DMS and all FMSes are paged in parallel (one fan-out
// branch per server), and each server's follow-up pages are prefetched in
// batched round trips (see readPages).
func (c *Client) Readdir(path string) ([]DirEntry, error) {
	return c.ReaddirContext(context.Background(), path)
}

// ReaddirContext is Readdir under ctx.
func (c *Client) ReaddirContext(ctx context.Context, path string) (out []DirEntry, err error) {
	oc := c.startOpCtx(ctx, "Readdir")
	defer func() { oc.finish(err) }()
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval.Err()
	}
	ino, firstSubs, firstMore, firstRemaining, seeded, err := c.resolveForReaddir(cleaned, oc)
	if err != nil {
		return nil, err
	}
	// The subdirectory pages come from the partition owning cleaned's
	// listing (the bootstrap DMS when unsharded).
	listEp, listSrc, err := c.routeDMS(cleaned, true)
	if err != nil {
		return nil, err
	}
	subBody := func(cursor string, skip uint32) []byte {
		return wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).
			Str(cursor).U32(ReaddirPageSize).U32(skip).Bytes()
	}
	fileBody := func(cursor string, skip uint32) []byte {
		return wire.NewEnc().UUID(ino.UUID()).Str(cursor).
			U32(ReaddirPageSize).U32(skip).Bytes()
	}
	// Branch 0 pages the DMS subdirectory listing (continuing from the
	// seeded first page, if any); branches 1..n page one FMS each. During
	// a migration window the FMS set is the union of the current and
	// previous members, so files not yet migrated still list.
	fmsEps := c.view.Load().endpoints()
	parts := make([][]DirEntry, 1+len(fmsEps))
	err = c.fanOut(oc, "page", len(parts), func(boc opCtx, i int) (time.Duration, error) {
		var ents []DirEntry
		var virt time.Duration
		var err error
		if i == 0 {
			if seeded {
				ents, virt, err = c.readMorePages(listEp, boc, wire.OpReaddirSubdirs, subBody, true, firstSubs, firstMore, firstRemaining)
			} else {
				ents, virt, err = c.readSubdirPages(listEp, listSrc, cleaned, boc, subBody)
			}
		} else {
			ents, virt, err = c.readPages(fmsEps[i-1], boc, wire.OpReaddirFiles, fileBody, false)
		}
		parts[i] = ents
		return virt, err
	})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	// A file mid-migration (installed at its new owner, source delete
	// pending) is listed by both servers; collapse exact duplicates. The
	// sort groups same-name entries, so only the current run needs
	// scanning.
	dedup := out[:0]
	for _, e := range out {
		dup := false
		for j := len(dedup) - 1; j >= 0 && dedup[j].Name == e.Name; j-- {
			if dedup[j] == e {
				dup = true
				break
			}
		}
		if !dup {
			dedup = append(dedup, e)
		}
	}
	return dedup, nil
}

// StatDir stats a path known to be a directory — a kind-specific shortcut
// for Stat that skips the FMS probe (one DMS round trip, or zero on a
// cache hit). A file path answers ENOENT.
func (c *Client) StatDir(path string) (*Attr, error) {
	return c.StatDirContext(context.Background(), path)
}

// StatDirContext is StatDir under ctx.
func (c *Client) StatDirContext(ctx context.Context, path string) (a *Attr, err error) {
	oc := c.startOpCtx(ctx, "StatDir")
	defer func() { oc.finish(err) }()
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval.Err()
	}
	ino, err := c.resolveDir(cleaned, oc)
	if err != nil {
		return nil, err
	}
	return &Attr{
		Kind:  KindDir,
		IsDir: true,
		Mode:  ino.Mode(),
		UID:   ino.UID(), GID: ino.GID(),
		CTime: ino.CTime(),
		UUID:  ino.UUID(),
	}, nil
}

// Create makes an empty file (the mdtest "touch"): resolve the parent
// directory (cached: zero trips) and issue one FMS create.
func (c *Client) Create(path string, mode uint32) error {
	return c.CreateContext(context.Background(), path, mode)
}

// CreateContext is Create under ctx.
func (c *Client) CreateContext(ctx context.Context, path string, mode uint32) (err error) {
	oc := c.startOpCtx(ctx, "Create")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	// While a migration window is open the file may still live only at its
	// previous owner; creating blindly at the new owner would succeed and
	// then be clobbered when the old copy migrates over. Check the previous
	// owner first — one extra read, paid only during the window.
	if v := c.view.Load(); v.window() {
		key := fms.FileKey(parent.UUID(), name)
		if pe := v.prevOwner(key); pe != nil && pe != v.owner(key) {
			probe := wire.NewEnc().UUID(parent.UUID()).Str(name).Bytes()
			pst, _, perr := pe.CallT(oc, wire.OpStatFile, probe)
			if perr != nil {
				return perr
			}
			if pst == wire.StatusOK {
				return wire.StatusExist.Err()
			}
		}
	}
	enc := wire.GetEnc()
	body := enc.UUID(parent.UUID()).Str(name).
		U32(mode).U32(c.uid).U32(c.gid).Bool(false).Bytes()
	st, _, err := c.fmsCall(oc, parent.UUID(), name, wire.OpCreateFile, body)
	enc.Free()
	if err != nil {
		return err
	}
	return st.Err()
}

// StatFile stats a path known to be a regular file — a kind-specific
// shortcut for Stat that goes straight to the file's FMS (one round trip).
// A directory path answers ENOENT.
func (c *Client) StatFile(path string) (*Attr, error) {
	return c.StatFileContext(context.Background(), path)
}

// StatFileContext is StatFile under ctx.
func (c *Client) StatFileContext(ctx context.Context, path string) (a *Attr, err error) {
	oc := c.startOpCtx(ctx, "StatFile")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return nil, err
	}
	m, err := c.statOn(parent.UUID(), name, oc)
	if err != nil {
		return nil, err
	}
	return metaToAttr(m), nil
}

func (c *Client) statOn(dir uuid.UUID, name string, oc opCtx) (*fms.FileMeta, error) {
	enc := wire.GetEnc()
	body := enc.UUID(dir).Str(name).Bytes()
	st, resp, err := c.fmsCall(oc, dir, name, wire.OpStatFile, body)
	enc.Free()
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	d := wire.NewDec(resp)
	a, ct := d.Blob(), d.Blob()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return &fms.FileMeta{Access: layout.FileAccess(a), Content: layout.FileContent(ct)}, nil
}

func metaToAttr(m *fms.FileMeta) *Attr {
	return &Attr{
		Kind: KindFile,
		Mode: m.Access.Mode(),
		UID:  m.Access.UID(), GID: m.Access.GID(),
		Size:      m.Content.Size(),
		BlockSize: m.Content.BlockSize(),
		CTime:     m.Access.CTime(),
		MTime:     m.Content.MTime(),
		ATime:     m.Content.ATime(),
		UUID:      m.Content.UUID(),
	}
}

// Stat stats a path of any kind and reports what it found in Attr.Kind
// (KindFile or KindDir). It asks the file's FMS first (files dominate) and
// falls back to the DMS for directories; callers that already know the
// kind can use the StatFile/StatDir shortcuts and skip the probe.
func (c *Client) Stat(path string) (*Attr, error) {
	return c.StatContext(context.Background(), path)
}

// StatContext is Stat under ctx.
func (c *Client) StatContext(ctx context.Context, path string) (*Attr, error) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval.Err()
	}
	if cleaned == "/" {
		return c.StatDirContext(ctx, cleaned)
	}
	a, err := c.StatFileContext(ctx, cleaned)
	if err == nil {
		return a, nil
	}
	if wire.StatusOf(err) != wire.StatusNotFound {
		return nil, err
	}
	return c.StatDirContext(ctx, cleaned)
}

// Remove deletes a file and its data blocks.
func (c *Client) Remove(path string) error {
	return c.RemoveContext(context.Background(), path)
}

// RemoveContext is Remove under ctx.
func (c *Client) RemoveContext(ctx context.Context, path string) (err error) {
	oc := c.startOpCtx(ctx, "Remove")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(c.uid).U32(c.gid).Bytes()
	st, resp, err := c.fmsCall(oc, parent.UUID(), name, wire.OpRemoveFile, body)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	// During a migration window the file may exist at both owners (exported
	// and installed, source delete pending); removing only one copy would
	// let the coordinator's next pass resurrect the file from the other.
	// Best-effort remove at the previous owner too — ENOENT there just
	// means there was no second copy.
	if v := c.view.Load(); v.window() {
		key := fms.FileKey(parent.UUID(), name)
		if pe := v.prevOwner(key); pe != nil && pe != v.owner(key) {
			pe.CallT(oc, wire.OpRemoveFile, body)
		}
	}
	u := wire.NewDec(resp).UUID()
	c.deleteBlocks(oc, blockDel{u: u})
	return nil
}

// blockDel identifies one reclaim: every block of file u from block from
// onward.
type blockDel struct {
	u    uuid.UUID
	from uint64
}

// deleteBlocks reclaims blocks on every object store server in parallel.
// Multiple files' deletions travel to each server packed into a single
// wire.OpBatch message. Reclaim is best-effort: per-call failures are
// ignored (the blocks leak until the UUID is reused — never, so this
// matches the previous fire-and-forget behavior).
func (c *Client) deleteBlocks(oc opCtx, dels ...blockDel) {
	if len(dels) == 0 {
		return
	}
	bodies := make([][]byte, len(dels))
	for i, del := range dels {
		bodies[i] = wire.NewEnc().UUID(del.u).U64(del.from).Bytes()
	}
	c.fanOut(oc, "reclaim", len(c.oss), func(boc opCtx, i int) (time.Duration, error) {
		o := c.oss[i]
		if len(bodies) == 1 || c.disableBatch {
			var vtotal time.Duration
			for _, b := range bodies {
				_, _, virt, _ := o.CallV(boc, wire.OpDeleteBlocks, b)
				vtotal += virt
			}
			return vtotal, nil
		}
		subs := make([]wire.SubReq, len(bodies))
		for j, b := range bodies {
			subs[j] = wire.SubReq{Op: wire.OpDeleteBlocks, Body: b}
		}
		_, virt, _ := o.CallBatch(boc, subs)
		return virt, nil
	})
}

// Chmod changes a file's permission bits (access part only, Table 1).
func (c *Client) Chmod(path string, mode uint32) error {
	return c.ChmodContext(context.Background(), path, mode)
}

// ChmodContext is Chmod under ctx.
func (c *Client) ChmodContext(ctx context.Context, path string, mode uint32) (err error) {
	oc := c.startOpCtx(ctx, "Chmod")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(mode).U32(c.uid).Bytes()
	st, _, err := c.fmsCall(oc, parent.UUID(), name, wire.OpChmodFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Chown changes a file's owner (access part only).
func (c *Client) Chown(path string, uid, gid uint32) error {
	return c.ChownContext(context.Background(), path, uid, gid)
}

// ChownContext is Chown under ctx.
func (c *Client) ChownContext(ctx context.Context, path string, uid, gid uint32) (err error) {
	oc := c.startOpCtx(ctx, "Chown")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(uid).U32(gid).U32(c.uid).Bytes()
	st, _, err := c.fmsCall(oc, parent.UUID(), name, wire.OpChownFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Access checks permissions on a file (reads the access part only).
func (c *Client) Access(path string, wantWrite bool) error {
	return c.AccessContext(context.Background(), path, wantWrite)
}

// AccessContext is Access under ctx.
func (c *Client) AccessContext(ctx context.Context, path string, wantWrite bool) (err error) {
	oc := c.startOpCtx(ctx, "Access")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(c.uid).U32(c.gid).Bool(wantWrite).Bytes()
	st, _, err := c.fmsCall(oc, parent.UUID(), name, wire.OpAccessFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Utimens sets a file's atime/mtime (content part only).
func (c *Client) Utimens(path string, atime, mtime int64) error {
	return c.UtimensContext(context.Background(), path, atime, mtime)
}

// UtimensContext is Utimens under ctx.
func (c *Client) UtimensContext(ctx context.Context, path string, atime, mtime int64) (err error) {
	oc := c.startOpCtx(ctx, "Utimens")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).I64(atime).I64(mtime).Bytes()
	st, _, err := c.fmsCall(oc, parent.UUID(), name, wire.OpUtimensFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Truncate sets a file's size and trims its data blocks.
func (c *Client) Truncate(path string, size uint64) error {
	return c.TruncateContext(context.Background(), path, size)
}

// TruncateContext is Truncate under ctx.
func (c *Client) TruncateContext(ctx context.Context, path string, size uint64) (err error) {
	oc := c.startOpCtx(ctx, "Truncate")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U64(size).Bytes()
	st, resp, err := c.fmsCall(oc, parent.UUID(), name, wire.OpTruncateFile, body)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	d := wire.NewDec(resp)
	u, oldSize, bs := d.UUID(), d.U64(), d.U32()
	if d.Err() == nil && size < oldSize && bs > 0 {
		from := (size + uint64(bs) - 1) / uint64(bs)
		c.deleteBlocks(oc, blockDel{u: u, from: from})
	}
	return nil
}

// ChmodDir changes a directory's permission bits on the DMS.
func (c *Client) ChmodDir(path string, mode uint32) error {
	return c.ChmodDirContext(context.Background(), path, mode)
}

// ChmodDirContext is ChmodDir under ctx.
func (c *Client) ChmodDirContext(ctx context.Context, path string, mode uint32) (err error) {
	oc := c.startOpCtx(ctx, "ChmodDir")
	defer func() { oc.finish(err) }()
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	body := wire.NewEnc().Str(cleaned).U32(mode).U32(c.uid).U32(c.gid).Bytes()
	st, resp, src, err := c.dmsCall(oc, cleaned, false, wire.OpChmodDir, body)
	if err != nil {
		return err
	}
	if st == wire.StatusOK && c.cache != nil {
		last, n := decodePub(wire.NewDec(resp))
		c.cache.selfPatchedFrom(src, cleaned, last, n)
	}
	return st.Err()
}

// RenameDir renames a directory; the DMS relocates the subtree's d-inodes
// (a prefix move on the tree store) while files and data stay put (§3.4.2).
// It returns the number of relocated directory inodes.
func (c *Client) RenameDir(oldPath, newPath string) (int, error) {
	return c.RenameDirContext(context.Background(), oldPath, newPath)
}

// RenameDirContext is RenameDir under ctx. Against a sharded DMS a rename
// whose source and destination live on different partitions runs as a
// two-partition commit coordinated by the source leader (DESIGN.md §16) —
// same result, roughly double the cost of a partition-local rename.
func (c *Client) RenameDirContext(ctx context.Context, oldPath, newPath string) (n int, err error) {
	oc := c.startOpCtx(ctx, "RenameDir")
	defer func() { oc.finish(err) }()
	oldC, err := fspath.Clean(oldPath)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	newC, err := fspath.Clean(newPath)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	body := wire.NewEnc().Str(oldC).Str(newC).U32(c.uid).U32(c.gid).Bytes()
	// The source partition's leader coordinates; route by oldC.
	st, resp, src, err := c.dmsCall(oc, oldC, false, wire.OpRenameDir, body)
	if err != nil {
		return 0, err
	}
	if st != wire.StatusOK {
		return 0, st.Err()
	}
	d := wire.NewDec(resp)
	moved := d.U64()
	if c.cache != nil {
		last, n := decodePub(d)
		cross := false
		if pm := c.partMap(); pm != nil && pm.Locate(oldC) != pm.Locate(newC) {
			cross = true
		}
		if !cross {
			c.cache.selfRenamedFrom(src, oldC, newC, last, n)
		} else {
			// Two partitions published recalls for this rename but the
			// trailer carries only the source side's. Drop both subtrees
			// unconditionally and account just the source watermarks; the
			// destination side's recalls arrive through its own channel.
			c.cache.invalidateSubtree(oldC)
			c.cache.invalidateSubtree(newC)
			c.cache.accountPub(src, last, n)
		}
	}
	return int(moved), nil
}

// RenameFile renames a file. Only the metadata object moves (its placement
// key directory_uuid + file_name changed); data blocks are addressed by the
// stable file UUID and never move (§3.4.2).
func (c *Client) RenameFile(oldPath, newPath string) error {
	return c.RenameFileContext(context.Background(), oldPath, newPath)
}

// RenameFileContext is RenameFile under ctx.
func (c *Client) RenameFileContext(ctx context.Context, oldPath, newPath string) (err error) {
	oc := c.startOpCtx(ctx, "RenameFile")
	defer func() { oc.finish(err) }()
	oldParent, _, oldName, err := c.splitPath(oldPath, oc)
	if err != nil {
		return err
	}
	newParent, _, newName, err := c.splitPath(newPath, oc)
	if err != nil {
		return err
	}
	m, err := c.statOn(oldParent.UUID(), oldName, oc)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(newParent.UUID()).Str(newName).
		U32(0).U32(0).U32(0).Bool(true).
		Blob(m.Access).Blob(m.Content).Bytes()
	st, _, err := c.fmsCall(oc, newParent.UUID(), newName, wire.OpCreateFile, body)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	rm := wire.NewEnc().UUID(oldParent.UUID()).Str(oldName).U32(c.uid).U32(c.gid).Bytes()
	st, _, err = c.fmsCall(oc, oldParent.UUID(), oldName, wire.OpRemoveFile, rm)
	if err != nil {
		return err
	}
	return st.Err()
}
