package partition

import (
	"bytes"
	"testing"

	"locofs/internal/dms"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// testShard runs every replica of every partition of pm on an in-process
// fabric, exactly as core.Start wires a sharded cluster (minus telemetry).
type testShard struct {
	net    *netsim.Network
	pm     *wire.PartMap
	nodes  map[string]*Node
	rss    map[string]*rpc.Server
	stores map[string]*kv.Instrumented
}

// startShard builds the shard; mods tweak each replica's Config before New
// (replication timeout, log cap, ...).
func startShard(t *testing.T, pm *wire.PartMap, mods ...func(*Config)) *testShard {
	t.Helper()
	ts := &testShard{
		net:    netsim.NewNetwork(netsim.Loopback),
		pm:     pm,
		nodes:  make(map[string]*Node),
		rss:    make(map[string]*rpc.Server),
		stores: make(map[string]*kv.Instrumented),
	}
	t.Cleanup(func() { ts.net.Close() })
	for pid, g := range pm.Groups {
		for idx, addr := range g {
			store := kv.Instrument(kv.NewBTreeStore(), kv.RAM)
			ds := dms.New(dms.Options{
				Store: store,
				// Replicas of one partition share a ServerID so replaying
				// the same op log yields byte-identical inodes.
				ServerID: 0x80000000 | uint32(pid),
			})
			cfg := Config{
				PID: uint32(pid), Index: idx, Self: addr,
				Map: pm, DMS: ds, Dialer: ts.net,
			}
			for _, mod := range mods {
				mod(&cfg)
			}
			n := New(cfg)
			ts.stores[addr] = store
			rs := rpc.NewServer()
			n.Attach(rs)
			l, err := ts.net.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			go rs.Serve(l)
			t.Cleanup(rs.Shutdown)
			t.Cleanup(n.Close)
			ts.nodes[addr] = n
			ts.rss[addr] = rs
		}
	}
	return ts
}

// call issues one op to addr with an explicit dedup id (0 = none).
func (ts *testShard) call(t *testing.T, addr string, op wire.Op, body []byte, req uint64) (wire.Status, []byte) {
	t.Helper()
	cl, err := rpc.Dial(ts.net, addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	st, resp, _, err := cl.Do(rpc.CallSpec{Op: op, Body: body, Req: req})
	if err != nil {
		t.Fatalf("call %s op %d: %v", addr, op, err)
	}
	return st, resp
}

func mkdirBody(path string) []byte {
	return wire.NewEnc().Str(path).U32(0o755).U32(0).U32(0).Bytes()
}

func statBody(path string) []byte {
	return wire.NewEnc().Str(path).U32(0).U32(0).Bytes()
}

func renameBody(oldPath, newPath string) []byte {
	return wire.NewEnc().Str(oldPath).Str(newPath).U32(0).U32(0).Bytes()
}

func onePartitionMap(addrs ...string) *wire.PartMap {
	return &wire.PartMap{Ver: 1, Groups: [][]string{addrs}}
}

func twoPartitionMap() *wire.PartMap {
	return &wire.PartMap{
		Ver:    1,
		Cuts:   []wire.PartCut{{Dir: "/b", PID: 1}},
		Groups: [][]string{{"p0-l", "p0-f"}, {"p1-l", "p1-f"}},
	}
}

// TestMutationReplicatesToFollower: a mutation acked by the leader is in
// the follower's log and applied to the follower's DMS, and the follower
// serves reads of it with byte-identical inode state.
func TestMutationReplicatesToFollower(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"))
	if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody("/d"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir via leader: %v", st)
	}
	if got := ts.nodes["f"].LogLen(); got != 1 {
		t.Fatalf("follower log length = %d, want 1", got)
	}
	stL, inoL := ts.call(t, "l", wire.OpStatDir, statBody("/d"), 0)
	stF, inoF := ts.call(t, "f", wire.OpStatDir, statBody("/d"), 0)
	if stL != wire.StatusOK || stF != wire.StatusOK {
		t.Fatalf("stat on leader/follower: %v / %v", stL, stF)
	}
	if !bytes.Equal(inoL, inoF) {
		t.Errorf("follower inode differs from leader's:\n  leader   %x\n  follower %x", inoL, inoF)
	}
}

// TestFollowerRefusesMutation: followers serve reads but not writes.
func TestFollowerRefusesMutation(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"))
	if st, _ := ts.call(t, "f", wire.OpMkdir, mkdirBody("/d"), 1); st == wire.StatusOK {
		t.Fatal("follower accepted a mutation")
	}
}

// TestWrongPartitionGuard: a request for a path outside the node's range is
// refused with EWRONGPART, never executed.
func TestWrongPartitionGuard(t *testing.T) {
	ts := startShard(t, twoPartitionMap())
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/b/x"), 1); st != wire.StatusWrongPartition {
		t.Fatalf("mkdir of /b/x at partition 0 = %v, want EWRONGPART", st)
	}
	if st, _ := ts.call(t, "p1-l", wire.OpMkdir, mkdirBody("/a"), 2); st != wire.StatusWrongPartition {
		t.Fatalf("mkdir of /a at partition 1 = %v, want EWRONGPART", st)
	}
}

// TestSeededAncestor: creating the cut directory on its owning partition
// seeds the cut partition, so child creations there pass the ancestor walk.
func TestSeededAncestor(t *testing.T) {
	ts := startShard(t, twoPartitionMap())
	// /b's own inode lives with partition 0; its subtree with partition 1.
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/b"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir /b: %v", st)
	}
	if st, _ := ts.call(t, "p1-l", wire.OpMkdir, mkdirBody("/b/x"), 2); st != wire.StatusOK {
		t.Fatalf("mkdir /b/x after seeding: %v", st)
	}
	// Without the seed the ancestor walk on partition 1 would have failed;
	// prove the negative with a never-created ancestor.
	if st, _ := ts.call(t, "p1-l", wire.OpMkdir, mkdirBody("/b/no/x"), 3); st == wire.StatusOK {
		t.Fatal("mkdir under a missing ancestor succeeded")
	}
}

// TestCutPointGuards: the cut directory is a mount-point-like fixture — it
// cannot be removed, and directory renames may not straddle the boundary.
func TestCutPointGuards(t *testing.T) {
	ts := startShard(t, twoPartitionMap())
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/b"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir /b: %v", st)
	}
	if st, _ := ts.call(t, "p0-l", wire.OpRmdir, statBody("/b"), 2); st != wire.StatusInval {
		t.Fatalf("rmdir of cut dir = %v, want EINVAL", st)
	}
	// Renaming the cut directory itself would move the boundary: refused.
	if st, _ := ts.call(t, "p0-l", wire.OpRenameDir, renameBody("/b", "/c"), 3); st != wire.StatusInval {
		t.Fatalf("rename of cut dir = %v, want EINVAL", st)
	}
	// A subtree containing the cut straddles it too ("/" here).
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/a"), 4); st != wire.StatusOK {
		t.Fatalf("mkdir /a: %v", st)
	}
	if st, _ := ts.call(t, "p1-l", wire.OpRenameDir, renameBody("/b/x", "/b/y"), 5); st != wire.StatusNotFound {
		t.Fatalf("rename of missing dir inside partition = %v, want ENOENT", st)
	}
}

// TestPromotionReplaysDedup: after the leader dies and a follower is
// promoted, a retried mutation (same dedup id) replays the original
// response from the rebuilt applied map instead of re-executing.
func TestPromotionReplaysDedup(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"))
	st, origResp := ts.call(t, "l", wire.OpMkdir, mkdirBody("/d"), 42)
	if st != wire.StatusOK {
		t.Fatalf("mkdir: %v", st)
	}
	ts.rss["l"].Shutdown()
	pm2 := &wire.PartMap{Ver: 2, Groups: [][]string{{"f"}}}
	if st, _ := ts.call(t, "f", wire.OpSetPartMap, wire.EncodeSetPartMap(pm2, 0, 0), 0); st != wire.StatusOK {
		t.Fatalf("promote follower: %v", st)
	}
	if !ts.nodes["f"].IsLeader() {
		t.Fatal("follower did not become leader")
	}
	// The retry (same dedup id) must replay OK with the original body, not
	// return EEXIST.
	st, resp := ts.call(t, "f", wire.OpMkdir, mkdirBody("/d"), 42)
	if st != wire.StatusOK {
		t.Fatalf("replayed mkdir on promoted leader = %v, want OK", st)
	}
	if !bytes.Equal(resp, origResp) {
		t.Errorf("replayed response differs from original")
	}
	// A genuinely new attempt at the same path is a duplicate.
	if st, _ := ts.call(t, "f", wire.OpMkdir, mkdirBody("/d"), 43); st != wire.StatusExist {
		t.Fatalf("fresh duplicate mkdir = %v, want EEXIST", st)
	}
}

// TestStaleMapPushRejected: a map no newer than the installed one is ESTALE.
func TestStaleMapPushRejected(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"))
	pm1 := &wire.PartMap{Ver: 1, Groups: [][]string{{"l", "f"}}}
	if st, _ := ts.call(t, "f", wire.OpSetPartMap, wire.EncodeSetPartMap(pm1, 0, 1), 0); st != wire.StatusStale {
		t.Fatalf("same-version map push = %v, want ESTALE", st)
	}
}

// TestGetPartMap: every node serves the current map.
func TestGetPartMap(t *testing.T) {
	ts := startShard(t, twoPartitionMap())
	for _, addr := range []string{"p0-l", "p0-f", "p1-l", "p1-f"} {
		st, body := ts.call(t, addr, wire.OpGetPartMap, nil, 0)
		if st != wire.StatusOK {
			t.Fatalf("GetPartMap at %s: %v", addr, st)
		}
		pm, err := wire.DecodePartMap(body)
		if err != nil || pm.Ver != 1 || len(pm.Groups) != 2 {
			t.Fatalf("GetPartMap at %s: pm=%+v err=%v", addr, pm, err)
		}
	}
}

// TestCrossPartitionRenameAtNodes drives the two-partition commit directly
// at the node layer: source and destination end states, and the dedup
// replay of the whole transaction.
func TestCrossPartitionRenameAtNodes(t *testing.T) {
	ts := startShard(t, twoPartitionMap())
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/b"), 1); st != wire.StatusOK {
		t.Fatal("mkdir /b")
	}
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/a"), 2); st != wire.StatusOK {
		t.Fatal("mkdir /a")
	}
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/a/src"), 3); st != wire.StatusOK {
		t.Fatal("mkdir /a/src")
	}
	if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody("/a/src/kid"), 4); st != wire.StatusOK {
		t.Fatal("mkdir /a/src/kid")
	}
	st, _ := ts.call(t, "p0-l", wire.OpRenameDir, renameBody("/a/src", "/b/dst"), 5)
	if st != wire.StatusOK {
		t.Fatalf("cross-partition rename: %v", st)
	}
	if st, _ := ts.call(t, "p0-l", wire.OpStatDir, statBody("/a/src"), 0); st != wire.StatusNotFound {
		t.Fatalf("source after rename = %v, want ENOENT", st)
	}
	for _, addr := range []string{"p1-l", "p1-f"} {
		if st, _ := ts.call(t, addr, wire.OpStatDir, statBody("/b/dst"), 0); st != wire.StatusOK {
			t.Fatalf("destination at %s after rename = %v", addr, st)
		}
		if st, _ := ts.call(t, addr, wire.OpStatDir, statBody("/b/dst/kid"), 0); st != wire.StatusOK {
			t.Fatalf("moved child at %s = %v", addr, st)
		}
	}
	// Retrying the whole transaction under the same dedup id replays OK.
	if st, _ := ts.call(t, "p0-l", wire.OpRenameDir, renameBody("/a/src", "/b/dst"), 5); st != wire.StatusOK {
		t.Fatalf("replayed cross-partition rename = %v, want OK", st)
	}
}
