package bench

import (
	"fmt"
	"time"

	"locofs/internal/mdtest"
)

// latencies runs a single-client workload on sut and returns the mean
// modeled latency per phase.
func latencies(sut *SUT, items, depth int, phases []string) (map[string]time.Duration, error) {
	rep, err := mdtest.Run(mdtest.Config{
		Clients:        1,
		ItemsPerClient: items,
		Depth:          depth,
		Phases:         phases,
	}, sut.NewFS)
	if err != nil {
		return nil, fmt.Errorf("bench: %s latency run: %w", sut.Name, err)
	}
	out := make(map[string]time.Duration, len(rep.Results))
	for _, pr := range rep.Results {
		if pr.Errors > 0 {
			return nil, fmt.Errorf("bench: %s phase %s had %d errors", sut.Name, pr.Phase, pr.Errors)
		}
		out[pr.Phase] = pr.VirtLatency.Mean
	}
	return out, nil
}

// Throughputs holds per-phase modeled throughput.
type Throughputs map[string]float64

// throughputs runs a clients-wide workload on sut and returns per-phase
// modeled IOPS.
//
// Phase duration is modeled as the larger of two bounds: the client bound
// (each client issues its operations sequentially, so the phase lasts at
// least the largest per-client total virtual time) and the server bound
// (the busiest metadata server's accumulated service time divided by its
// request parallelism). This is the standard closed-system bottleneck
// estimate and reproduces the saturation behavior the paper sweeps client
// counts to find (Table 3).
func throughputs(sut *SUT, clients, items, depth int, phases []string) (achieved, capacity Throughputs, err error) {
	var prevBusy []time.Duration
	busyDelta := make(map[string]time.Duration, len(phases))
	rep, err := mdtest.Run(mdtest.Config{
		Clients:        clients,
		ItemsPerClient: items,
		Depth:          depth,
		Phases:         phases,
		SetupHook: func() {
			// Exclude tree-setup work from the first phase's accounting.
			prevBusy = sut.MetaBusy()
		},
		PhaseHook: func(phase string) {
			cur := sut.MetaBusy()
			var maxDelta time.Duration
			for i := range cur {
				d := cur[i]
				if i < len(prevBusy) {
					d -= prevBusy[i]
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
			prevBusy = cur
			busyDelta[phase] = maxDelta
		},
	}, sut.NewFS)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %s throughput run: %w", sut.Name, err)
	}
	achieved = make(Throughputs, len(rep.Results))
	capacity = make(Throughputs, len(rep.Results))
	for _, pr := range rep.Results {
		if pr.Errors > 0 {
			return nil, nil, fmt.Errorf("bench: %s phase %s had %d errors", sut.Name, pr.Phase, pr.Errors)
		}
		clientBound := pr.ClientCostMax
		serverBound := busyDelta[pr.Phase]
		workers := sut.Workers
		if workers <= 0 {
			workers = 1
		}
		serverBound /= time.Duration(workers)
		if serverBound > 0 {
			capacity[pr.Phase] = float64(pr.Ops) / serverBound.Seconds()
		}
		dur := clientBound
		if serverBound > dur {
			dur = serverBound
		}
		if dur <= 0 {
			achieved[pr.Phase] = 0
			continue
		}
		achieved[pr.Phase] = float64(pr.Ops) / dur.Seconds()
	}
	return achieved, capacity, nil
}

// fmtRTT formats a latency as a multiple of the link RTT ("1.3x").
func fmtRTT(lat, rtt time.Duration) string {
	if rtt <= 0 {
		return fmtUS(lat)
	}
	return fmt.Sprintf("%.1fx", float64(lat)/float64(rtt))
}

// fmtUS formats a latency in microseconds.
func fmtUS(lat time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(lat.Nanoseconds())/1e3)
}

// fmtKIOPS formats a throughput in thousands of operations per second.
func fmtKIOPS(v float64) string {
	return fmt.Sprintf("%.1fK", v/1e3)
}

// fmtRatio formats a dimensionless ratio.
func fmtRatio(v float64) string {
	return fmt.Sprintf("%.2f", v)
}
