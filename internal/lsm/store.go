package lsm

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// Options configures a Store.
type Options struct {
	// MemtableBytes is the approximate memtable size that triggers a flush
	// to a level-0 run. Default 4 MiB.
	MemtableBytes int
	// L0Runs is the number of level-0 runs that triggers a full compaction
	// into level 1. Default 4.
	L0Runs int
	// WALDir, if non-empty, enables a write-ahead log in that directory.
	WALDir string
}

func (o *Options) withDefaults() Options {
	out := Options{MemtableBytes: 4 << 20, L0Runs: 4}
	if o != nil {
		if o.MemtableBytes > 0 {
			out.MemtableBytes = o.MemtableBytes
		}
		if o.L0Runs > 0 {
			out.L0Runs = o.L0Runs
		}
		out.WALDir = o.WALDir
	}
	return out
}

// Stats reports the internal write activity of the store, from which write
// amplification can be derived.
type Stats struct {
	Flushes          uint64
	Compactions      uint64
	UserBytesWritten uint64
	RunBytesWritten  uint64 // bytes rewritten during flush+compaction
}

// Store is the LSM-tree store. It is safe for concurrent use. Flushes and
// compactions run synchronously inside the triggering write, keeping the
// store deterministic under test while still paying the merge cost.
type Store struct {
	mu   sync.RWMutex
	opts Options
	mem  *skiplist
	l0   []*run // newest first
	l1   *run
	wal  *walWriter
	seed int64

	size atomic.Int64 // live key estimate (puts of new keys - deletes)

	flushes     atomic.Uint64
	compactions atomic.Uint64
	userBytes   atomic.Uint64
	runBytes    atomic.Uint64
}

// New returns an empty Store. If opts.WALDir is set, prior WAL contents are
// replayed (crash recovery) before the store is returned.
func New(opts *Options) (*Store, error) {
	s := &Store{opts: opts.withDefaults(), seed: 1}
	s.mem = newSkiplist(s.seed)
	s.l1 = &run{}
	if s.opts.WALDir != "" {
		w, records, err := openWAL(s.opts.WALDir)
		if err != nil {
			return nil, err
		}
		s.wal = w
		for _, rec := range records {
			s.applyLocked(rec.key, rec.val, rec.tomb)
		}
	}
	return s, nil
}

// MustNew is New for configurations that cannot fail (no WAL).
func MustNew(opts *Options) *Store {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Get returns a copy of the newest value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, tomb, ok := s.mem.get(key); ok {
		return copyVal(v, tomb)
	}
	for _, r := range s.l0 {
		if v, tomb, ok := r.get(key); ok {
			return copyVal(v, tomb)
		}
	}
	if v, tomb, ok := s.l1.get(key); ok {
		return copyVal(v, tomb)
	}
	return nil, false
}

func copyVal(v []byte, tomb bool) ([]byte, bool) {
	if tomb {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stores value under key.
func (s *Store) Put(key, value []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	s.userBytes.Add(uint64(len(k) + len(v)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.append(k, v, false)
	}
	s.applyLocked(k, v, false)
}

// Delete removes key. The LSM store cannot answer "was it present?" without
// a read, so Delete performs one — matching the read-before-delete cost real
// LSM-backed metadata pays.
func (s *Store) Delete(key []byte) bool {
	_, existed := s.Get(key)
	k := append([]byte(nil), key...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.append(k, nil, true)
	}
	s.applyLocked(k, nil, true)
	return existed
}

// applyLocked inserts into the memtable and triggers flush/compaction.
func (s *Store) applyLocked(key, val []byte, tomb bool) {
	_, liveBefore := s.getLocked(key)
	s.mem.put(key, val, tomb)
	if tomb && liveBefore {
		s.size.Add(-1)
	} else if !tomb && !liveBefore {
		s.size.Add(1)
	}
	if s.mem.bytes >= s.opts.MemtableBytes {
		s.flushLocked()
	}
}

// flushLocked freezes the memtable into a new L0 run and compacts if L0 is
// over its run budget.
func (s *Store) flushLocked() {
	if s.mem.size == 0 {
		return
	}
	r := runFromSkiplist(s.mem)
	s.flushes.Add(1)
	s.runBytes.Add(uint64(runBytes(r)))
	s.l0 = append([]*run{r}, s.l0...)
	s.seed++
	s.mem = newSkiplist(s.seed)
	if s.wal != nil {
		s.wal.rotate()
	}
	if len(s.l0) >= s.opts.L0Runs {
		s.compactLocked()
	}
}

// compactLocked merges every L0 run and L1 into a fresh L1.
func (s *Store) compactLocked() {
	all := make([]*run, 0, len(s.l0)+1)
	all = append(all, s.l0...)
	all = append(all, s.l1)
	merged := mergeRuns(all, true)
	s.compactions.Add(1)
	s.runBytes.Add(uint64(runBytes(merged)))
	s.l0 = nil
	s.l1 = merged
	// Recompute the live-key estimate exactly: after a full compaction the
	// only live data is L1 plus the (empty) memtable.
	s.size.Store(int64(merged.len()))
}

func runBytes(r *run) int {
	n := 0
	for i := range r.keys {
		n += len(r.keys[i]) + len(r.vals[i])
	}
	return n
}

// Compact forces a full flush + compaction.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.compactLocked()
}

// PatchInPlace implements kv.Store. An LSM tree cannot modify stored values
// in place: the whole value must be read, patched, and re-appended. That
// read-modify-write is deliberate — it is the cost the paper's decoupled
// fixed-offset design eliminates.
func (s *Store) PatchInPlace(key []byte, off int, data []byte) bool {
	s.mu.Lock()
	v, ok := s.getLocked(key)
	if !ok || off < 0 || off+len(data) > len(v) {
		s.mu.Unlock()
		return false
	}
	nv := append([]byte(nil), v...)
	copy(nv[off:], data)
	k := append([]byte(nil), key...)
	if s.wal != nil {
		s.wal.append(k, nv, false)
	}
	s.userBytes.Add(uint64(len(k) + len(nv)))
	s.applyLocked(k, nv, false)
	s.mu.Unlock()
	return true
}

// ReadAt implements kv.Store via a full value read.
func (s *Store) ReadAt(key []byte, off int, buf []byte) bool {
	v, ok := s.Get(key)
	if !ok || off < 0 || off+len(buf) > len(v) {
		return false
	}
	copy(buf, v[off:])
	return true
}

// AppendValue implements kv.Store via read-modify-write.
func (s *Store) AppendValue(key, data []byte) {
	s.mu.Lock()
	v, _ := s.getLocked(key)
	nv := make([]byte, len(v)+len(data))
	copy(nv, v)
	copy(nv[len(v):], data)
	k := append([]byte(nil), key...)
	if s.wal != nil {
		s.wal.append(k, nv, false)
	}
	s.userBytes.Add(uint64(len(k) + len(nv)))
	s.applyLocked(k, nv, false)
	s.mu.Unlock()
}

// getLocked is Get without locking or copying; caller holds s.mu.
func (s *Store) getLocked(key []byte) ([]byte, bool) {
	if v, tomb, ok := s.mem.get(key); ok {
		if tomb {
			return nil, false
		}
		return v, true
	}
	for _, r := range s.l0 {
		if v, tomb, ok := r.get(key); ok {
			if tomb {
				return nil, false
			}
			return v, true
		}
	}
	if v, tomb, ok := s.l1.get(key); ok && !tomb {
		return v, true
	}
	return nil, false
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := s.size.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// ForEach visits live records in ascending key order.
func (s *Store) ForEach(fn func(key, value []byte) bool) {
	s.AscendRange(nil, nil, fn)
}

// AscendRange visits live records with start <= key < end in ascending key
// order, merging the memtable and every run with newest-wins semantics.
func (s *Store) AscendRange(start, end []byte, fn func(key, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Build per-component cursors, newest first.
	type cursor struct {
		next func() (k, v []byte, tomb, ok bool)
		k    []byte
		v    []byte
		tomb bool
		ok   bool
	}
	var cs []*cursor
	{
		n := s.mem.seek(start)
		c := &cursor{next: func() (k, v []byte, tomb, ok bool) {
			if n == nil {
				return nil, nil, false, false
			}
			k, v, tomb = n.key, n.val, n.tomb
			n = n.next[0]
			return k, v, tomb, true
		}}
		cs = append(cs, c)
	}
	runs := append(append([]*run{}, s.l0...), s.l1)
	for _, r := range runs {
		r := r
		i := r.seek(start)
		c := &cursor{next: func() (k, v []byte, tomb, ok bool) {
			if i >= r.len() {
				return nil, nil, false, false
			}
			k, v, tomb = r.keys[i], r.vals[i], r.tomb[i]
			i++
			return k, v, tomb, true
		}}
		cs = append(cs, c)
	}
	for _, c := range cs {
		c.k, c.v, c.tomb, c.ok = c.next()
	}
	for {
		var minKey []byte
		src := -1
		for i, c := range cs {
			if !c.ok {
				continue
			}
			if src == -1 || bytes.Compare(c.k, minKey) < 0 {
				minKey, src = c.k, i
			}
		}
		if src == -1 {
			return
		}
		if end != nil && bytes.Compare(minKey, end) >= 0 {
			return
		}
		winner := cs[src]
		val, tomb := winner.v, winner.tomb
		for _, c := range cs {
			if c.ok && bytes.Equal(c.k, minKey) {
				c.k, c.v, c.tomb, c.ok = c.next()
			}
		}
		if tomb {
			continue
		}
		if !fn(minKey, val) {
			return
		}
	}
}

// StatsSnapshot returns a copy of the store's activity counters.
func (s *Store) StatsSnapshot() Stats {
	return Stats{
		Flushes:          s.flushes.Load(),
		Compactions:      s.compactions.Load(),
		UserBytesWritten: s.userBytes.Load(),
		RunBytesWritten:  s.runBytes.Load(),
	}
}

// Close releases the WAL, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}
