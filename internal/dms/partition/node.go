// Package partition turns a set of dms.Server instances into a sharded,
// replicated directory metadata service (DESIGN.md §16).
//
// The namespace is split into subtree range partitions by a versioned
// wire.PartMap. Each partition is a replica group of Nodes wrapping one
// dms.Server each; replica 0 is the leader. Mutations reach the leader,
// which appends them to a replicated op log, pushes the entry to every
// live follower (all must ack before the leader replies — an acked
// mutation is on every live replica, so promoting any follower loses
// nothing), then applies locally under the entry's pinned timestamp.
// Followers apply entries in log order through the same dms.Dispatch,
// producing byte-identical state, and serve leased reads locally.
//
// A directory rename that crosses a partition boundary runs a two-
// partition commit: the source leader (coordinator) logs an intent marker
// and freezes the subtree, ships the re-keyed records to the destination
// leader (which validates, logs the prepare on its own group, and freezes
// the target), then logs the commit decision — the transaction's point of
// no return — applies the source-side delete, and drives the destination
// commit. Every decision is in both groups' logs before it takes effect,
// so a promoted leader on either side can finish or abort the transaction
// (Recover): an intent without a logged decision is presumed aborted; a
// logged decision is re-pushed to the destination, where commit/abort are
// idempotent by transaction id.
package partition

import (
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/dms"
	"locofs/internal/flight"
	"locofs/internal/fspath"
	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// Config assembles one partition replica.
type Config struct {
	// PID is the partition this node belongs to; Index its replica slot in
	// the partition's group (0 = leader). Self is this node's own fabric
	// address (so it can exclude itself from replication fan-out).
	PID   uint32
	Index int
	Self  string
	// Map is the initial partition map.
	Map *wire.PartMap
	// DMS is the node's local directory metadata server.
	DMS *dms.Server
	// Dialer reaches peer nodes (followers, other partition leaders).
	Dialer netsim.Dialer
	// Journal, when non-nil, receives partition events (failovers,
	// follower exclusions, 2PC recovery actions) stamped Source.
	Journal *flight.Journal
	Source  string
	// Now supplies the leader-pinned log-entry timestamps. Default:
	// time.Now().UnixNano via the wire clock of the DMS is NOT used —
	// the node needs its own reading before dispatch.
	Now func() int64
}

type appliedRes struct {
	status wire.Status
	body   []byte
}

type srcTx struct {
	sp        *wire.SrcPrepare
	committed bool
}

// Node is one replica of one DMS partition.
type Node struct {
	dms    *dms.Server
	pid    uint32
	self   string
	dialer netsim.Dialer
	j      *flight.Journal
	source string
	now    func() int64

	pm  atomic.Pointer[wire.PartMap]
	idx atomic.Int32 // replica index; 0 = leader

	// txSeq generates fallback transaction ids for cross-partition renames
	// issued without a client dedup id (top bit set, never colliding with
	// rpc-assigned ids).
	txSeq atomic.Uint64

	// CrashAfterPrepare / CrashAfterCommit are test hooks: when set, the
	// coordinator abandons a cross-partition rename at that protocol point
	// (as if the process died) and returns StatusIO. The crash-recovery
	// tests drive failover through them deterministically.
	CrashAfterPrepare atomic.Bool
	CrashAfterCommit  atomic.Bool

	// mu serializes log append + apply. It is never held across an RPC to
	// another partition (deadlock with opposite-direction traffic); RPCs to
	// this partition's own followers are safe — followers never call out.
	mu        sync.Mutex
	log       []*wire.LogEntry
	nextIndex uint64
	// applied maps a client dedup id to its mutation's outcome. It is
	// rebuilt identically on every replica from the log, so a retry that
	// lands on a freshly promoted leader replays the original response
	// instead of re-executing (the rpc-layer dedup window died with the
	// old leader). Unbounded by design at this scale; a production system
	// would trim it with a client watermark.
	applied map[uint64]appliedRes
	// excluded holds follower addresses permanently dropped from the
	// group after a failed append: there is no catch-up protocol in this
	// design — the operator replaces the replica (re-split). Keeping the
	// invariant "acked ⇒ on every non-excluded replica" is what makes any
	// surviving follower promotable.
	excluded map[string]bool
	frozen   map[string]int                 // subtree roots locked by in-flight 2PC
	dtx      map[uint64]*wire.RenamePrepare // destination-side prepared txs
	stx      map[uint64]*srcTx              // coordinator-side txs

	peerMu sync.Mutex
	peers  map[string]*rpc.Client

	// seedMu serializes seed pushes (read-state + push) so two back-to-back
	// mutations of one path cannot reorder their absolute-state updates on
	// the target partition. It is never held together with mu.
	seedMu sync.Mutex
}

// New builds a Node. Call Attach to wire it to the replica's rpc.Server.
func New(cfg Config) *Node {
	n := &Node{
		dms:      cfg.DMS,
		pid:      cfg.PID,
		self:     cfg.Self,
		dialer:   cfg.Dialer,
		j:        cfg.Journal,
		source:   cfg.Source,
		now:      cfg.Now,
		applied:  make(map[uint64]appliedRes),
		excluded: make(map[string]bool),
		frozen:   make(map[string]int),
		dtx:      make(map[uint64]*wire.RenamePrepare),
		stx:      make(map[uint64]*srcTx),
		peers:    make(map[string]*rpc.Client),
	}
	n.pm.Store(cfg.Map)
	n.idx.Store(int32(cfg.Index))
	if n.now == nil {
		n.now = defaultNow
	}
	return n
}

func defaultNow() int64 { return time.Now().UnixNano() }

// DMS returns the node's local directory metadata server.
func (n *Node) DMS() *dms.Server { return n.dms }

// Map returns the node's installed partition map.
func (n *Node) Map() *wire.PartMap { return n.pm.Load() }

// IsLeader reports whether this node currently leads its partition.
func (n *Node) IsLeader() bool { return n.idx.Load() == 0 }

// LogLen returns the replicated op log's length (tests assert replica
// convergence with it).
func (n *Node) LogLen() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextIndex
}

func (n *Node) emit(op string, value int64, detail string) {
	if n.j != nil {
		n.j.Emit(flight.KindPartition, n.source, op, 0, value, detail)
	}
}

// Attach registers the partition-aware handler set on rs: the full DMS op
// set wrapped with the range guard and replication, the replication ops
// (OpLogAppend, OpSeedUpdate), the 2PC destination ops, and the partition-
// map admin ops. It replaces dms.Server.Attach for sharded deployments.
func (n *Node) Attach(rs *rpc.Server) {
	rs.SetLeaseFunc(n.dms.LeaseSeq)
	rs.SetPMapFunc(func() uint64 {
		if pm := n.pm.Load(); pm != nil {
			return pm.Ver
		}
		return 0
	})
	for _, op := range dms.Ops {
		op := op
		if dms.MutationOp(op) {
			rs.HandleMsg(op, func(req uint64, body []byte) (wire.Status, []byte) {
				return n.serveMutation(op, req, body)
			})
		} else {
			rs.Handle(op, func(body []byte) (wire.Status, []byte) {
				return n.serveRead(op, body)
			})
		}
	}
	rs.Handle(wire.OpLogAppend, n.serveLogAppend)
	rs.Handle(wire.OpSeedUpdate, n.serveSeedUpdate)
	rs.Handle(wire.OpRenamePrepare, n.serveRenamePrepare)
	rs.Handle(wire.OpRenameCommit, n.serveRenameDecision(wire.OpRenameCommit))
	rs.Handle(wire.OpRenameAbort, n.serveRenameDecision(wire.OpRenameAbort))
	rs.Handle(wire.OpGetPartMap, func([]byte) (wire.Status, []byte) {
		pm := n.pm.Load()
		if pm == nil {
			return wire.StatusNotFound, nil
		}
		return wire.StatusOK, wire.EncodePartMap(pm)
	})
	rs.Handle(wire.OpSetPartMap, n.serveSetPartMap)
}

// ---- reads ----

func (n *Node) serveRead(op wire.Op, body []byte) (wire.Status, []byte) {
	p1, _, hasPath, err := dms.RequestPaths(op, body)
	if err != nil {
		return wire.StatusInval, nil
	}
	if hasPath {
		pm := n.pm.Load()
		owner := pm.Locate(p1)
		if op == wire.OpReaddirSubdirs {
			owner = pm.LocateList(p1)
		}
		if owner != n.pid {
			return wire.StatusWrongPartition, nil
		}
	}
	return n.dms.Dispatch(op, body)
}

// ---- mutations ----

func (n *Node) serveMutation(op wire.Op, req uint64, body []byte) (wire.Status, []byte) {
	p1, p2, _, err := dms.RequestPaths(op, body)
	if err != nil {
		return wire.StatusInval, nil
	}
	pm := n.pm.Load()
	if op == wire.OpRenameDir {
		if pm.CutWithin(p1) || pm.CutWithin(p2) {
			return wire.StatusInval, []byte("rename source or target subtree straddles a partition cut")
		}
		if pm.Locate(p1) != n.pid || !n.IsLeader() {
			return wire.StatusWrongPartition, nil
		}
		if dst := pm.Locate(p2); dst != n.pid {
			return n.coordRename(req, p1, p2, body, dst, pm)
		}
		return n.replicate(op, req, body, p1, p2)
	}
	if op == wire.OpRmdir && isCutDir(pm, p1) {
		// A cut directory is a mount-point-like fixture: its (empty or not)
		// listing lives on another partition and removing it would orphan
		// the cut. EBUSY analog.
		return wire.StatusInval, []byte("directory is a partition cut point")
	}
	if pm.Locate(p1) != n.pid || !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	st, respBody := n.replicate(op, req, body, p1, "")
	if st == wire.StatusOK {
		n.pushSeeds(p1, pm)
	}
	return st, respBody
}

func isCutDir(pm *wire.PartMap, p string) bool {
	for _, c := range pm.Cuts {
		if c.Dir == p {
			return true
		}
	}
	return false
}

// replicate runs one mutation through the replicated op log: dedup check,
// freeze check, append + all-follower fan-out + local apply.
func (n *Node) replicate(op wire.Op, req uint64, body []byte, p1, p2 string) (wire.Status, []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req != 0 {
		if r, ok := n.applied[req]; ok {
			return r.status, r.body
		}
	}
	for _, p := range [2]string{p1, p2} {
		if p != "" && n.frozenConflictLocked(p) {
			return wire.StatusUnavailable, []byte("subtree locked by an in-flight cross-partition rename")
		}
	}
	return n.appendApplyLocked(&wire.LogEntry{Req: req, TS: n.now(), Op: op, Body: body})
}

// appendApplyLocked assigns the next index to le, appends it, replicates
// it to every live follower (a failed follower is permanently excluded),
// applies it locally, and returns the local outcome. Caller holds n.mu.
func (n *Node) appendApplyLocked(le *wire.LogEntry) (wire.Status, []byte) {
	le.Index = n.nextIndex
	n.log = append(n.log, le)
	n.nextIndex++
	enc := wire.EncodeLogEntry(le)
	for _, addr := range n.followersLocked() {
		st, _, err := n.callPeer(addr, wire.OpLogAppend, enc)
		if err != nil || st != wire.StatusOK {
			n.excluded[addr] = true
			n.emit("follower_excluded", int64(le.Index), addr)
		}
	}
	return n.applyLocked(le)
}

// followersLocked lists the live replication targets: the group minus this
// node and minus excluded replicas.
func (n *Node) followersLocked() []string {
	pm := n.pm.Load()
	if pm == nil || int(n.pid) >= len(pm.Groups) {
		return nil
	}
	var out []string
	for _, addr := range pm.Groups[n.pid] {
		if addr != n.self && !n.excluded[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// applyLocked applies one log entry to local state. It runs identically on
// the leader (after fan-out) and on followers (from OpLogAppend), in log
// order, producing byte-identical stores and the same applied-response
// table everywhere.
func (n *Node) applyLocked(le *wire.LogEntry) (wire.Status, []byte) {
	switch le.Op {
	case wire.OpSeedUpdate:
		path, present, inode, err := wire.DecodeSeedUpdate(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		return n.dms.InstallSeed(path, present, inode), nil

	case wire.OpRenamePrepare:
		rp, err := wire.DecodeRenamePrepare(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		n.dtx[rp.TxID] = rp
		n.freezeLocked(rp.NewPath)
		return wire.StatusOK, nil

	case wire.OpRenameCommit:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		rp, ok := n.dtx[txid]
		if !ok {
			return wire.StatusOK, nil // replayed decision
		}
		st := n.dms.ApplyRenameDestCommit(rp.NewPath, rp.Recs)
		n.unfreezeLocked(rp.NewPath)
		delete(n.dtx, txid)
		return st, nil

	case wire.OpRenameAbort:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		if rp, ok := n.dtx[txid]; ok {
			n.unfreezeLocked(rp.NewPath)
			delete(n.dtx, txid)
		}
		return wire.StatusOK, nil

	case wire.OpRenameSrcPrepare:
		sp, err := wire.DecodeSrcPrepare(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		n.stx[sp.TxID] = &srcTx{sp: sp}
		n.freezeLocked(sp.OldPath)
		return wire.StatusOK, nil

	case wire.OpRenameSrcCommit:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		tx, ok := n.stx[txid]
		if !ok || tx.committed {
			return wire.StatusOK, nil
		}
		body, st := n.dms.ApplyRenameSrcCommit(tx.sp.OldPath)
		tx.committed = true
		n.unfreezeLocked(tx.sp.OldPath)
		if st == wire.StatusOK && txid != 0 {
			n.applied[txid] = appliedRes{status: st, body: body}
		}
		return st, body

	case wire.OpRenameSrcComplete:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		delete(n.stx, txid)
		return wire.StatusOK, nil

	case wire.OpRenameSrcAbort:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		if tx, ok := n.stx[txid]; ok {
			n.unfreezeLocked(tx.sp.OldPath)
			delete(n.stx, txid)
		}
		return wire.StatusOK, nil

	default:
		// Ordinary DMS mutation: dispatch under the leader-pinned clock so
		// every replica stamps the same ctime and generates the same UUIDs
		// (replicas share the DMS ServerID and apply in log order).
		n.dms.PinClock(le.TS)
		st, body := n.dms.Dispatch(le.Op, le.Body)
		n.dms.UnpinClock()
		if le.Req != 0 {
			n.applied[le.Req] = appliedRes{status: st, body: body}
		}
		return st, body
	}
}

// ---- freeze bookkeeping ----

func (n *Node) freezeLocked(root string) { n.frozen[root]++ }
func (n *Node) unfreezeLocked(root string) {
	if n.frozen[root] <= 1 {
		delete(n.frozen, root)
	} else {
		n.frozen[root]--
	}
}

// frozenConflictLocked reports whether p overlaps a frozen subtree: p is a
// frozen root, inside one, or an ancestor of one (an ancestor rename or
// rmdir would move or check state the transaction owns).
func (n *Node) frozenConflictLocked(p string) bool {
	for f := range n.frozen {
		if p == f || fspath.IsAncestorOf(f, p) || fspath.IsAncestorOf(p, f) {
			return true
		}
	}
	return false
}

// ---- seed pushes ----

// pushSeeds propagates p's post-mutation inode state to every partition
// holding p as a seeded ancestor. Runs after the local commit, outside
// n.mu (cross-partition call), serialized per node so back-to-back
// mutations of one path cannot reorder their absolute-state updates.
// A push failure only degrades that partition's seed freshness (flight
// event); the local mutation is already acked and must stand.
func (n *Node) pushSeeds(p string, pm *wire.PartMap) {
	targets := pm.SeedTargets(p, n.pid)
	if len(targets) == 0 {
		return
	}
	n.seedMu.Lock()
	defer n.seedMu.Unlock()
	ino, ok := n.dms.CurrentInode(p)
	body := wire.EncodeSeedUpdate(p, ok, ino)
	for _, pid := range targets {
		addr := pm.Leader(pid)
		if addr == "" {
			continue
		}
		st, _, err := n.callPeer(addr, wire.OpSeedUpdate, body)
		if err != nil || st != wire.StatusOK {
			n.emit("seed_push_failed", int64(pid), p)
		}
	}
}

func (n *Node) serveSeedUpdate(body []byte) (wire.Status, []byte) {
	if _, _, _, err := wire.DecodeSeedUpdate(body); err != nil {
		return wire.StatusInval, nil
	}
	if !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st, _ := n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpSeedUpdate, Body: body})
	return st, nil
}

// ---- replication (follower side) ----

func (n *Node) serveLogAppend(body []byte) (wire.Status, []byte) {
	le, err := wire.DecodeLogEntry(body)
	if err != nil {
		return wire.StatusInval, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if le.Index < n.nextIndex {
		return wire.StatusOK, nil // duplicate append (leader retry)
	}
	if le.Index > n.nextIndex {
		// A gap means this replica missed an entry — it must not ack, or
		// the acked-everywhere invariant breaks. The leader excludes it.
		return wire.StatusInval, []byte("op-log gap")
	}
	n.log = append(n.log, le)
	n.nextIndex++
	// The apply outcome is recorded in n.applied for client-retry replay;
	// the append itself succeeded regardless of the mutation's own status
	// (the leader returns that status to the client).
	n.applyLocked(le)
	return wire.StatusOK, nil
}

// ---- two-partition rename (coordinator = source leader) ----

func (n *Node) coordRename(req uint64, oldC, newC string, body []byte, dstPID uint32, pm *wire.PartMap) (wire.Status, []byte) {
	dest := pm.Leader(dstPID)
	if dest == "" {
		return wire.StatusUnavailable, nil
	}
	d := wire.NewDec(body)
	_, _ = d.Str(), d.Str()
	uid, gid := d.U32(), d.U32()
	if d.Err() != nil {
		return wire.StatusInval, nil
	}
	txid := req
	if txid == 0 {
		txid = n.txSeq.Add(1) | 1<<63
	}

	// Intent: validate the source half, export the subtree, log the
	// prepare marker (replicated — any promoted source replica knows the
	// transaction exists), freeze the subtree.
	n.mu.Lock()
	if r, ok := n.applied[txid]; ok {
		n.mu.Unlock()
		return r.status, r.body
	}
	if n.frozenConflictLocked(oldC) || n.frozenConflictLocked(newC) {
		n.mu.Unlock()
		return wire.StatusUnavailable, []byte("subtree locked by an in-flight cross-partition rename")
	}
	if st := n.dms.ValidateRenameSource(oldC, uid, gid); st != wire.StatusOK {
		n.mu.Unlock()
		return st, nil
	}
	recs, st := n.dms.ExportRename(oldC, newC)
	if st != wire.StatusOK {
		n.mu.Unlock()
		return st, nil
	}
	sp := &wire.SrcPrepare{TxID: txid, OldPath: oldC, NewPath: newC, UID: uid, GID: gid, DestPID: dstPID}
	n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcPrepare, Body: wire.EncodeSrcPrepare(sp)})
	n.mu.Unlock()

	// Phase 1: prepare at the destination leader (validates, logs on its
	// group, freezes the target). Never called under n.mu.
	prep := &wire.RenamePrepare{TxID: txid, OldPath: oldC, NewPath: newC, UID: uid, GID: gid, Recs: recs}
	pst, _, perr := n.callPeer(dest, wire.OpRenamePrepare, wire.EncodeRenamePrepare(prep))
	if n.CrashAfterPrepare.Load() {
		// Test hook: the coordinator dies here — intent logged on both
		// sides, no decision anywhere. Recovery presumes abort.
		return wire.StatusIO, nil
	}
	if perr != nil || pst != wire.StatusOK {
		n.abortTx(txid, dest)
		if perr != nil {
			return wire.StatusUnavailable, nil
		}
		return pst, nil
	}

	// Decision: the commit marker in the source log is the point of no
	// return. Applying it deletes the source subtree and records the
	// client response on every source replica.
	n.mu.Lock()
	cst, respBody := n.appendApplyLocked(&wire.LogEntry{Req: txid, TS: n.now(), Op: wire.OpRenameSrcCommit, Body: wire.EncodeRenameDecision(txid)})
	n.mu.Unlock()
	if n.CrashAfterCommit.Load() {
		// Test hook: the coordinator dies after deciding commit but before
		// telling the destination. Recovery re-drives the commit.
		return wire.StatusIO, nil
	}

	// Phase 2: drive the destination commit, then retire the transaction.
	dst2, _, derr := n.callPeer(dest, wire.OpRenameCommit, wire.EncodeRenameDecision(txid))
	if derr != nil || dst2 != wire.StatusOK {
		// The rename is committed; the destination will converge when a
		// promoted source leader re-drives it (the tx stays in stx).
		n.emit("2pc_commit_push_failed", int64(dstPID), newC)
		return cst, respBody
	}
	n.mu.Lock()
	n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcComplete, Body: wire.EncodeRenameDecision(txid)})
	n.mu.Unlock()
	return cst, respBody
}

// abortTx logs the abort decision locally (unfreezing the subtree on every
// source replica) and best-effort tells the destination.
func (n *Node) abortTx(txid uint64, dest string) {
	n.mu.Lock()
	n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcAbort, Body: wire.EncodeRenameDecision(txid)})
	n.mu.Unlock()
	n.callPeer(dest, wire.OpRenameAbort, wire.EncodeRenameDecision(txid))
}

// ---- two-partition rename (destination side) ----

func (n *Node) serveRenamePrepare(body []byte) (wire.Status, []byte) {
	rp, err := wire.DecodeRenamePrepare(body)
	if err != nil {
		return wire.StatusInval, nil
	}
	if !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.dtx[rp.TxID]; ok {
		return wire.StatusOK, nil // duplicate prepare (coordinator retry)
	}
	if n.frozenConflictLocked(rp.NewPath) {
		return wire.StatusUnavailable, []byte("target subtree locked by another cross-partition rename")
	}
	if st := n.dms.ValidateRenameDest(rp.NewPath, rp.UID, rp.GID); st != wire.StatusOK {
		return st, nil
	}
	st, _ := n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenamePrepare, Body: body})
	return st, nil
}

func (n *Node) serveRenameDecision(op wire.Op) rpc.HandlerFunc {
	return func(body []byte) (wire.Status, []byte) {
		txid, err := wire.DecodeRenameDecision(body)
		if err != nil {
			return wire.StatusInval, nil
		}
		if !n.IsLeader() {
			return wire.StatusWrongPartition, nil
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if _, ok := n.dtx[txid]; !ok {
			// Unknown transaction: already decided and retired here, or
			// never prepared (presumed abort). Either way the decision is
			// idempotent.
			return wire.StatusOK, nil
		}
		st, _ := n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: op, Body: body})
		return st, nil
	}
}

// ---- partition map administration / failover ----

func (n *Node) serveSetPartMap(body []byte) (wire.Status, []byte) {
	pm, pid, idx, err := wire.DecodeSetPartMap(body)
	if err != nil {
		return wire.StatusInval, []byte(err.Error())
	}
	if pid != n.pid {
		return wire.StatusInval, []byte("partition id mismatch")
	}
	cur := n.pm.Load()
	if cur != nil && pm.Ver <= cur.Ver {
		return wire.StatusStale, nil
	}
	wasLeader := n.IsLeader()
	n.pm.Store(pm)
	n.idx.Store(int32(idx))
	n.emit("map_installed", int64(pm.Ver), n.self)
	if idx == 0 && !wasLeader {
		n.emit("promoted", int64(pm.Ver), n.self)
		n.Recover()
	}
	return wire.StatusOK, nil
}

// Recover finishes or aborts cross-partition renames left open by the
// failed leader, using only replicated state. An intent without a logged
// decision is presumed aborted (the destination may hold a prepare — the
// abort is pushed there, where an unknown transaction id is a no-op). A
// logged commit without a completion marker is re-driven: the destination
// commit is idempotent by transaction id. Called on promotion; exported
// for tests.
func (n *Node) Recover() {
	type action struct {
		txid    uint64
		commit  bool
		destPID uint32
	}
	var acts []action
	n.mu.Lock()
	for txid, tx := range n.stx {
		acts = append(acts, action{txid: txid, commit: tx.committed, destPID: tx.sp.DestPID})
	}
	pm := n.pm.Load()
	n.mu.Unlock()

	for _, a := range acts {
		dest := pm.Leader(a.destPID)
		if a.commit {
			n.emit("2pc_recover_commit", int64(a.destPID), "")
			st, _, err := n.callPeer(dest, wire.OpRenameCommit, wire.EncodeRenameDecision(a.txid))
			if err == nil && st == wire.StatusOK {
				n.mu.Lock()
				n.appendApplyLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcComplete, Body: wire.EncodeRenameDecision(a.txid)})
				n.mu.Unlock()
			}
		} else {
			n.emit("2pc_recover_abort", int64(a.destPID), "")
			n.abortTx(a.txid, dest)
		}
	}
}

// ---- peers ----

func (n *Node) peer(addr string) (*rpc.Client, error) {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if cl, ok := n.peers[addr]; ok {
		return cl, nil
	}
	cl, err := rpc.Dial(n.dialer, addr)
	if err != nil {
		return nil, err
	}
	n.peers[addr] = cl
	return cl, nil
}

func (n *Node) callPeer(addr string, op wire.Op, body []byte) (wire.Status, []byte, error) {
	cl, err := n.peer(addr)
	if err != nil {
		return wire.StatusIO, nil, err
	}
	st, respBody, err := cl.Call(op, body)
	if err != nil {
		// Drop the broken connection; the next call re-dials.
		n.peerMu.Lock()
		if n.peers[addr] == cl {
			delete(n.peers, addr)
		}
		n.peerMu.Unlock()
		cl.Close()
	}
	return st, respBody, err
}

// Close releases the node's peer connections.
func (n *Node) Close() {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	for addr, cl := range n.peers {
		cl.Close()
		delete(n.peers, addr)
	}
}
