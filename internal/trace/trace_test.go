package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locofs/internal/telemetry"
)

func TestSpanTreeAssembly(t *testing.T) {
	tr := New(Config{Sample: 1})
	root := tr.StartSpan(42, 0, "Readdir", "client")
	c1 := root.StartChild("ReaddirSubdirs")
	c1.Annotate("addr=dms")
	g1 := tr.StartSpan(42, c1.ID(), "ReaddirSubdirs", "dms")
	g1.Finish()
	c1.Finish()
	c2 := root.StartChild("ReaddirFiles")
	c2.SetSub(1)
	c2.Finish()
	root.Finish()
	// A span from another trace must not leak in.
	other := tr.StartSpan(7, 0, "Mkdir", "client")
	other.Finish()

	spans := tr.Trace(42)
	if len(spans) != 4 {
		t.Fatalf("Trace(42) = %d spans, want 4", len(spans))
	}
	roots := tr.Tree(42)
	if len(roots) != 1 || roots[0].Span.Name != "Readdir" {
		t.Fatalf("Tree(42) roots = %+v, want single Readdir root", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(roots[0].Children))
	}
	rpc := roots[0].Children[0]
	if len(rpc.Children) != 1 || rpc.Children[0].Span.Server != "dms" {
		t.Fatalf("server child not linked under rpc span: %+v", rpc.Children)
	}
	if got := roots[0].Children[1].Span.Sub; got != 1 {
		t.Errorf("Sub = %d, want 1", got)
	}
}

func TestSamplingDeterministicAcrossTracers(t *testing.T) {
	// Two tracers (two processes) must reach identical keep/drop decisions
	// per trace ID, so sampled trees arrive complete.
	a := New(Config{Sample: 0.25, Slow: -1})
	b := New(Config{Sample: 0.25, Slow: -1})
	kept := 0
	for id := uint64(1); id <= 2000; id++ {
		if a.sampled(id) != b.sampled(id) {
			t.Fatalf("divergent sampling decision for trace %d", id)
		}
		if a.sampled(id) {
			kept++
		}
	}
	if kept < 350 || kept > 650 {
		t.Errorf("sample=0.25 kept %d/2000 traces, want ~500", kept)
	}
}

func TestSlowAndErrorSpansAlwaysKept(t *testing.T) {
	// Sampling probability is astronomically small, so probabilistic
	// retention effectively never fires; slow and error spans must land in
	// the ring anyway.
	tr := New(Config{Sample: 1e-18, Slow: time.Nanosecond})
	slow := tr.StartSpan(1, 0, "Slow", "srv")
	time.Sleep(time.Millisecond)
	slow.Finish()
	errSpan := tr.StartSpan(2, 0, "Err", "srv")
	errSpan.SetStatus("EIO")
	errSpan.Finish()
	if len(tr.Trace(1)) != 1 {
		t.Error("slow span was not retained")
	}
	if len(tr.Trace(2)) != 1 {
		t.Error("error span was not retained")
	}

	// With the slow force-keep disabled and the same tiny probability, a
	// fast OK span is dropped.
	tr2 := New(Config{Sample: 1e-18, Slow: -1})
	ok := tr2.StartSpan(3, 0, "Fast", "srv")
	ok.Finish()
	if n := len(tr2.Spans()); n != 0 {
		t.Errorf("fast OK span retained (%d spans) despite ~0 sample", n)
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(Config{Sample: 1, BufSpans: 8})
	for i := 0; i < 100; i++ {
		tr.StartSpan(uint64(i), 0, "op", "srv").Finish()
	}
	if got := len(tr.Spans()); got != 8 {
		t.Errorf("ring holds %d spans, want 8", got)
	}
	if tr.Recorded() != 100 {
		t.Errorf("Recorded = %d, want 100", tr.Recorded())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.StartSpan(1, 0, "op", "srv")
	sp.Annotate("cache=hit")
	sp.SetStatus("EIO")
	sp.SetSub(3)
	child := sp.StartChild("child")
	child.Finish()
	sp.Finish()
	if sp.ID() != 0 || child != nil {
		t.Error("nil span produced non-nil results")
	}
	if tr.Spans() != nil || tr.Recorded() != 0 {
		t.Error("nil tracer retained spans")
	}
	if New(Config{Sample: 0}) != nil {
		t.Error("New(Sample=0) did not return the nil (disabled) tracer")
	}
}

// TestDisabledTracerAllocs guards the acceptance criterion that tracing
// disabled adds no allocation on the hot path: the full span lifecycle on a
// nil tracer must be allocation-free.
func TestDisabledTracerAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(99, 0, "CreateFile", "client")
		child := sp.StartChild("rpc")
		child.Annotate("retry=1")
		child.Finish()
		sp.SetStatus("")
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f objects per op, want 0", allocs)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(uint64(i), 0, "CreateFile", "client")
		child := sp.StartChild("rpc")
		child.Finish()
		sp.Finish()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(Config{Sample: 1, BufSpans: 1 << 14})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(uint64(i), 0, "CreateFile", "client")
		child := sp.StartChild("rpc")
		child.Finish()
		sp.Finish()
	}
}

func TestTracesHandlerJSON(t *testing.T) {
	tr := New(Config{Sample: 1})
	root := tr.StartSpan(0xabc, 0, "Readdir", "client")
	child := root.StartChild("ReaddirFiles")
	child.SetSub(0)
	child.Finish()
	root.Finish()

	h := TracesHandler(tr, nil) // nil tracer must be tolerated

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list JSON: %v\n%s", err, rec.Body)
	}
	if len(list) != 1 || list[0]["trace"] != "0xabc" || list[0]["root"] != "Readdir" {
		t.Fatalf("list = %+v", list)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/0xabc", nil))
	var tree struct {
		Trace string `json:"trace"`
		Spans int    `json:"spans"`
		Tree  []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
				Sub  *int   `json:"sub"`
			} `json:"children"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatalf("tree JSON: %v\n%s", err, rec.Body)
	}
	if tree.Spans != 2 || len(tree.Tree) != 1 || tree.Tree[0].Name != "Readdir" {
		t.Fatalf("tree = %+v", tree)
	}
	kids := tree.Tree[0].Children
	if len(kids) != 1 || kids[0].Name != "ReaddirFiles" || kids[0].Sub == nil || *kids[0].Sub != 0 {
		t.Fatalf("children = %+v", kids)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/0xdead", nil))
	if rec.Code != 404 {
		t.Errorf("unknown trace returned %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/notanid", nil))
	if rec.Code != 400 {
		t.Errorf("bad trace id returned %d, want 400", rec.Code)
	}
}

func TestHotHandlerJSON(t *testing.T) {
	tk := NewTopK(8)
	for i := 0; i < 50; i++ {
		tk.Touch("/hot")
	}
	tk.Touch("/cold")
	h := HotHandler(map[string]*TopK{"dms": tk, "absent": nil})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hot?n=1", nil))
	body := rec.Body.String()
	var out []struct {
		Source string   `json:"source"`
		Total  uint64   `json:"total"`
		Top    []HotKey `json:"top"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("hot JSON: %v\n%s", err, body)
	}
	if len(out) != 1 || out[0].Source != "dms" || out[0].Total != 51 {
		t.Fatalf("hot = %+v", out)
	}
	if len(out[0].Top) != 1 || out[0].Top[0].Key != "/hot" || out[0].Top[0].Count != 50 {
		t.Fatalf("top = %+v", out[0].Top)
	}
	if strings.Contains(body, "absent") {
		t.Error("nil sketch rendered")
	}
}

func TestRingDropAndEvictCounters(t *testing.T) {
	// Sample ~nothing: every unsampled fast span must count as dropped.
	tr := New(Config{Sample: 1e-12, Slow: -1, BufSpans: 4})
	for i := 0; i < 50; i++ {
		tr.StartSpan(uint64(1000+i), 0, "Mkdir", "dms").Finish()
	}
	if d := tr.Dropped(); d < 45 {
		t.Fatalf("Dropped() = %d, want ~50 (sampling loss must be counted)", d)
	}

	// Keep everything into a 4-slot ring: 10 spans retained, 6 evicted.
	tr2 := New(Config{Sample: 1, BufSpans: 4})
	for i := 0; i < 10; i++ {
		tr2.StartSpan(uint64(i), 0, "Mkdir", "dms").Finish()
	}
	if e := tr2.Evicted(); e != 6 {
		t.Fatalf("Evicted() = %d, want 6", e)
	}
	if tr2.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0 with Sample=1", tr2.Dropped())
	}

	// Nil tracer: zero everywhere, and metric registration still works.
	var nilT *Tracer
	if nilT.Dropped() != 0 || nilT.Evicted() != 0 {
		t.Fatal("nil tracer counters not zero")
	}
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg, tr2)
	var found bool
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == MetricSpansEvicted && m.Value == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("evicted gauge not exported")
	}
}
