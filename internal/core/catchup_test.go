package core

import (
	"fmt"
	"testing"
	"time"

	"locofs/internal/netsim"
)

// TestFollowerCatchUpRejoinAndPromotion is the acceptance e2e: a follower
// that missed appends while blackholed is excluded, catches up when the
// network heals, rejoins the live fan-out set, and — after two failovers
// promote it to sole leader — serves every mutation the cluster ever
// acked. "Acked ⇒ on every non-excluded replica" holds across the rejoin.
func TestFollowerCatchUpRejoinAndPromotion(t *testing.T) {
	c, err := Start(Options{DMSReplicas: 3, DMSRepTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	var acked []string
	mk := func(path string) {
		t.Helper()
		if err := fs.Mkdir(path, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", path, err)
		}
		acked = append(acked, path)
	}
	mk("/before")

	// The second follower goes dark and misses appends: the leader excludes
	// it after one replication timeout and keeps serving.
	slow := dmsAddr(0, 2)
	c.net.SetFault(slow, netsim.FaultConfig{Blackhole: true})
	for i := 0; i < 5; i++ {
		mk(fmt.Sprintf("/during%d", i))
	}
	if exc := c.DMSNodes[0][0].Excluded(); len(exc) != 1 || exc[0] != slow {
		t.Fatalf("excluded = %v, want [%s]", exc, slow)
	}

	// Network heals; the follower replays the missed range and rejoins.
	c.net.SetFault(slow, netsim.FaultConfig{})
	if err := c.DMSNodes[0][2].CatchUp(); err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	if exc := c.DMSNodes[0][0].Excluded(); len(exc) != 0 {
		t.Fatalf("still excluded after rejoin: %v", exc)
	}
	for i := 0; i < 5; i++ {
		mk(fmt.Sprintf("/after%d", i))
	}

	// Two failovers promote the once-excluded replica to sole leader; every
	// acked mutation must be visible from it alone. The verifying client
	// dials before the failovers (the bootstrap address dies with the first
	// one) and follows the map pushes; its cache is off, so every stat
	// below reaches the promoted replica.
	fresh, err := c.NewClient(ClientConfig{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := c.FailoverDMS(0); err != nil {
		t.Fatalf("first failover: %v", err)
	}
	if err := c.FailoverDMS(0); err != nil {
		t.Fatalf("second failover: %v", err)
	}
	if !c.DMSNodes[0][0].IsLeader() || c.DMSNodes[0][0].Map().Leader(0) != slow {
		t.Fatalf("once-excluded replica %s is not the leader after two failovers", slow)
	}
	for _, p := range acked {
		if _, err := fresh.StatDir(p); err != nil {
			t.Errorf("acked mkdir %s lost on the rejoined replica: %v", p, err)
		}
	}
}

// TestDMSLogBoundedUnderSustainedLoad: across a 10k-mutation workload the
// retained op log and the dedup-replay table on every replica stay at the
// configured cap (the follower may lag the leader's floor by the one
// append that carries it).
func TestDMSLogBoundedUnderSustainedLoad(t *testing.T) {
	const cap = 256
	c, err := Start(Options{DMSReplicas: 2, DMSLogCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const total = 10000
	for i := 0; i < total; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/d%05d", i), 0o755); err != nil {
			t.Fatalf("mkdir %d: %v", i, err)
		}
	}
	for rep, n := range c.DMSNodes[0] {
		if got := n.LogLen(); got < total {
			t.Errorf("replica %d log length = %d, want >= %d", rep, got, total)
		}
		if got := n.LogRetained(); got > cap+1 {
			t.Errorf("replica %d retained log = %d, want <= %d", rep, got, cap+1)
		}
		if got := n.DedupLen(); got > cap+1 {
			t.Errorf("replica %d dedup table = %d, want <= %d", rep, got, cap+1)
		}
	}
}

// TestNoPartitionStallUnderBlackholedFollower: with one follower dark,
// reads and mutations on the partition complete within the client op
// timeout — the slow follower costs one replication timeout and an
// exclusion, not a partition-wide stall (replication no longer runs under
// the partition lock).
func TestNoPartitionStallUnderBlackholedFollower(t *testing.T) {
	c, err := Start(Options{DMSReplicas: 2, DMSRepTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewClient(ClientConfig{
		OpTimeout:    2 * time.Second,
		DisableCache: true, // every stat below must hit the DMS, not a cache
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}

	c.net.SetFault(dmsAddr(0, 1), netsim.FaultConfig{Blackhole: true})
	// The first mutation eats the replication timeout while the follower is
	// excluded; reads racing it must still complete well inside the op
	// timeout (they never touch the replication path).
	done := make(chan error, 1)
	go func() { done <- fs.Mkdir("/d2", 0o755) }()
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := fs.StatDir("/d"); err != nil {
			t.Fatalf("read during exclusion: %v", err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("read during exclusion took %v — partition stalled", el)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("mutation during exclusion: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mutation under a blackholed follower never completed")
	}
	// Steady state after exclusion: no timeout per op anymore.
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/post%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("20 mutations after exclusion took %v", el)
	}
}
