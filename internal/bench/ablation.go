package bench

import (
	"fmt"
	"time"

	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/mdtest"
)

// AblationRenameRatio quantifies the paper's §3.4.1 argument: rename is so
// rare in real traces (zero in the TaihuLight trace, 1e-7 of operations in
// the BSC GPFS study) that hash-based metadata placement loses nothing in
// practice. The table replays the TaihuLight-style op mix with the rename
// ratio swept upward and reports the overall mean operation cost — which
// stays flat until renames become orders of magnitude more common than any
// measured trace.
func AblationRenameRatio(env Env) (*Table, error) {
	t := &Table{
		Title:   "Ablation: sensitivity of overall metadata cost to the rename ratio (§3.4.1)",
		Note:    "TaihuLight-style op mix; real traces sit at ratio 0 to 1e-7",
		Headers: []string{"rename ratio", "mean op cost", "vs ratio 0"},
	}
	cluster, err := core.Start(core.Options{
		FMSCount:  4,
		Link:      env.Link,
		CostModel: &core.PaperKVCost,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	newFS := func() (fsapi.FS, error) {
		cl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			return nil, err
		}
		return fsapi.LocoFS{C: cl}, nil
	}

	ops := env.TputItems * 40
	ratios := []float64{0, 1e-4, 1e-3, 1e-2, 5e-2}
	var base time.Duration
	for i, ratio := range ratios {
		mix := mdtest.TaihuLightMix
		if ratio > 0 {
			mix = mix.WithRenameRatio(ratio)
		}
		rep, err := mdtest.RunMix(mdtest.MixConfig{
			Ops:  ops,
			Mix:  mix,
			Seed: 11,
			Root: fmt.Sprintf("/mix%d", i),
		}, newFS)
		if err != nil {
			return nil, err
		}
		mean := rep.MeanLatency()
		if i == 0 {
			base = mean
		}
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%+.1f%%", (float64(mean)/float64(base)-1)*100)
		}
		t.AddRow(fmt.Sprintf("%.0e", ratio), fmtUS(mean), rel)
	}
	return t, nil
}

// AblationCacheLease sweeps the client cache lease (the paper fixes it at
// 30 s, §3.2.2) and reports create throughput: leases shorter than the
// phase force re-lookups, converging to LocoFS-NC as the lease goes to 0.
func AblationCacheLease(env Env) (*Table, error) {
	t := &Table{
		Title:   "Ablation: client directory-cache lease vs create cost (§3.2.2)",
		Note:    "single client, steady-state creates in one directory",
		Headers: []string{"lease", "mean create cost", "trips/op"},
	}
	leases := []time.Duration{0, time.Millisecond, 100 * time.Millisecond, 30 * time.Second}
	for i, lease := range leases {
		cluster, err := core.Start(core.Options{
			FMSCount:           4,
			Link:               env.Link,
			CostModel:          &core.PaperKVCost,
			DisableClientCache: lease == 0,
			Lease:              lease,
			// This ablation sweeps the TTL itself, so run the cache in
			// its TTL-only mode; with lease coherence on, expiry no
			// longer drives re-lookups the way §3.2.2 describes.
			DisableLeaseCoherence: true,
		})
		if err != nil {
			return nil, err
		}
		cl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			cluster.Close()
			return nil, err
		}
		if err := cl.Mkdir("/w", 0o755); err != nil {
			cl.Close()
			cluster.Close()
			return nil, err
		}
		items := env.LatItems
		t0 := cl.Trips()
		c0 := cl.Cost()
		for j := 0; j < items; j++ {
			if err := cl.Create(fmt.Sprintf("/w/f%d-%d", i, j), 0o644); err != nil {
				cl.Close()
				cluster.Close()
				return nil, err
			}
		}
		mean := (cl.Cost() - c0) / time.Duration(items)
		trips := float64(cl.Trips()-t0) / float64(items)
		label := lease.String()
		if lease == 0 {
			label = "disabled"
		}
		t.AddRow(label, fmtUS(mean), fmt.Sprintf("%.2f", trips))
		cl.Close()
		cluster.Close()
	}
	return t, nil
}

// AblationDirentGranularity contrasts the paper's concatenated per-directory
// dirent values (§3.2.1: "all the files ... have their dirents concatenated
// as one value") against hypothetical per-entry dirent keys, by measuring
// the KV operations a readdir of an N-entry directory costs under each
// organization. Concatenation turns readdir into one get; per-entry keys
// need a scan over N records.
func AblationDirentGranularity(env Env) (*Table, error) {
	t := &Table{
		Title:   "Ablation: concatenated vs per-entry dirent storage (§3.2.1)",
		Note:    "modeled KV cost of one readdir on the owning FMS",
		Headers: []string{"entries", "concatenated", "per-entry keys"},
	}
	cost := core.PaperKVCost
	for _, n := range []int{16, 256, 4096} {
		// Concatenated: one get returning ~ (name + uuid + len) * n bytes.
		bytes := uint64(n * (8 + 16 + 1))
		concat := cost.Price(1, 0, 0, 0, bytes)
		// Per-entry: an ordered scan visiting n records of the same size.
		perEntry := cost.Price(0, 0, 0, uint64(n), bytes)
		t.AddRow(fmt.Sprint(n), fmtUS(concat), fmtUS(perEntry))
	}
	return t, nil
}
