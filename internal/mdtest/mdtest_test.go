package mdtest

import (
	"testing"
	"time"

	"locofs/internal/core"
	"locofs/internal/fsapi"
)

func locoFactory(t *testing.T) func() (fsapi.FS, error) {
	t.Helper()
	cluster, err := core.Start(core.Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return func() (fsapi.FS, error) {
		cl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			return nil, err
		}
		return fsapi.LocoFS{C: cl}, nil
	}
}

func TestRunDefaultPhases(t *testing.T) {
	rep, err := Run(Config{Clients: 4, ItemsPerClient: 25}, locoFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(DefaultPhases) {
		t.Fatalf("got %d phases, want %d", len(rep.Results), len(DefaultPhases))
	}
	for _, pr := range rep.Results {
		wantOps := 4 * 25
		if pr.Phase == PhaseReaddir {
			wantOps = 4 * 10
		}
		if pr.Ops != wantOps {
			t.Errorf("%s: ops = %d, want %d", pr.Phase, pr.Ops, wantOps)
		}
		if pr.Errors != 0 {
			t.Errorf("%s: %d errors", pr.Phase, pr.Errors)
		}
		if pr.IOPS() <= 0 {
			t.Errorf("%s: IOPS = %v", pr.Phase, pr.IOPS())
		}
		if pr.Latency.Mean <= 0 || pr.Latency.P99 < pr.Latency.P50 {
			t.Errorf("%s: bad latency stats %+v", pr.Phase, pr.Latency)
		}
	}
}

func TestRunAttrPhases(t *testing.T) {
	rep, err := Run(Config{Clients: 2, ItemsPerClient: 20, Phases: AttrPhases}, locoFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Results {
		if pr.Errors != 0 {
			t.Errorf("%s: %d errors", pr.Phase, pr.Errors)
		}
	}
	if _, ok := rep.Result(PhaseChmod); !ok {
		t.Error("chmod phase missing from report")
	}
}

func TestRunWithDepth(t *testing.T) {
	rep, err := Run(Config{Clients: 2, ItemsPerClient: 10, Depth: 5,
		Phases: []string{PhaseTouch, PhaseFileStat, PhaseRemove}}, locoFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Results {
		if pr.Errors != 0 {
			t.Errorf("%s: %d errors at depth 5", pr.Phase, pr.Errors)
		}
	}
}

func TestUnknownPhaseRejected(t *testing.T) {
	_, err := Run(Config{Clients: 1, ItemsPerClient: 1, Phases: []string{"bogus"}}, locoFactory(t))
	if err == nil {
		t.Error("unknown phase accepted")
	}
}

func TestSummarize(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := summarize(samples)
	if s.P50 != 50*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v", s.Mean)
	}
	if z := summarize(nil); z.Mean != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Clients != 1 || c.ItemsPerClient != 100 || c.Root != "/mdtest" || len(c.Phases) == 0 {
		t.Errorf("defaults = %+v", c)
	}
}
