package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"locofs/internal/client"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

func startCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t *testing.T, c *Cluster, cfg ClientConfig) *client.Client {
	t.Helper()
	cl, err := c.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestMkdirCreateStat(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4, CheckPermissions: true})
	cl := newClient(t, c, ClientConfig{UID: 1000, GID: 1000})
	if err := cl.Mkdir("/home", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.Mkdir("/home/user", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/home/user/data.txt", 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := cl.StatFile("/home/user/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	if a.IsDir || a.Size != 0 || a.UID != 1000 {
		t.Errorf("attr = %+v", a)
	}
	d, err := cl.StatDir("/home/user")
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsDir || d.UUID.IsNil() {
		t.Errorf("dir attr = %+v", d)
	}
	// Generic Stat resolves both kinds.
	if a2, err := cl.Stat("/home/user/data.txt"); err != nil || a2.IsDir {
		t.Errorf("Stat(file) = %+v, %v", a2, err)
	}
	if d2, err := cl.Stat("/home/user"); err != nil || !d2.IsDir {
		t.Errorf("Stat(dir) = %+v, %v", d2, err)
	}
}

func TestMkdirErrors(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	if err := cl.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cl.Mkdir("/a", 0o755); wire.StatusOf(err) != wire.StatusExist {
		t.Errorf("duplicate mkdir = %v, want EEXIST", err)
	}
	if err := cl.Mkdir("/missing/child", 0o755); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("mkdir under missing parent = %v, want ENOENT", err)
	}
	if err := cl.Mkdir("relative", 0o755); wire.StatusOf(err) != wire.StatusInval {
		t.Errorf("relative mkdir = %v, want EINVAL", err)
	}
}

func TestCreateErrors(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/d", 0o755)
	if err := cl.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/d/f", 0o644); wire.StatusOf(err) != wire.StatusExist {
		t.Errorf("duplicate create = %v, want EEXIST", err)
	}
	if err := cl.Create("/nodir/f", 0o644); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("create under missing dir = %v, want ENOENT", err)
	}
	if _, err := cl.StatFile("/d/missing"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("stat missing file = %v, want ENOENT", err)
	}
}

func TestReaddirMergesDMSAndFMS(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/dir", 0o755)
	for i := 0; i < 20; i++ {
		if err := cl.Create(fmt.Sprintf("/dir/file%02d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := cl.Mkdir(fmt.Sprintf("/dir/sub%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := cl.Readdir("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 25 {
		t.Fatalf("readdir returned %d entries, want 25", len(ents))
	}
	dirs, files := 0, 0
	for i, e := range ents {
		if e.IsDir {
			dirs++
		} else {
			files++
		}
		if i > 0 && ents[i-1].Name >= e.Name {
			t.Errorf("entries unsorted: %q >= %q", ents[i-1].Name, e.Name)
		}
	}
	if dirs != 5 || files != 20 {
		t.Errorf("dirs=%d files=%d", dirs, files)
	}
}

func TestRemoveAndRmdir(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/d", 0o755)
	cl.Create("/d/f1", 0o644)
	cl.Create("/d/f2", 0o644)

	// rmdir of a dir that still holds files must fail (FMS probe).
	if err := cl.Rmdir("/d"); wire.StatusOf(err) != wire.StatusNotEmpty {
		t.Errorf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
	if err := cl.Remove("/d/f1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("/d/f2"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("/d/f1"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("double remove = %v, want ENOENT", err)
	}
	// Subdirectory also blocks rmdir.
	cl.Mkdir("/d/sub", 0o755)
	if err := cl.Rmdir("/d"); wire.StatusOf(err) != wire.StatusNotEmpty {
		t.Errorf("rmdir with subdir = %v, want ENOTEMPTY", err)
	}
	if err := cl.Rmdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StatDir("/d"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("stat removed dir = %v, want ENOENT", err)
	}
}

func TestChmodChownAccess(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2, CheckPermissions: true})
	owner := newClient(t, c, ClientConfig{UID: 1000, GID: 100})
	other := newClient(t, c, ClientConfig{UID: 2000, GID: 200})
	root := newClient(t, c, ClientConfig{UID: 0, GID: 0})

	owner.Mkdir("/p", 0o777)
	owner.Create("/p/f", 0o600)

	if err := other.Access("/p/f", false); wire.StatusOf(err) != wire.StatusPerm {
		t.Errorf("other read access to 0600 = %v, want EPERM", err)
	}
	if err := owner.Access("/p/f", true); err != nil {
		t.Errorf("owner write access = %v", err)
	}
	// Non-owner chmod must fail; owner chmod opens it up.
	if err := other.Chmod("/p/f", 0o644); wire.StatusOf(err) != wire.StatusPerm {
		t.Errorf("non-owner chmod = %v, want EPERM", err)
	}
	if err := owner.Chmod("/p/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := other.Access("/p/f", false); err != nil {
		t.Errorf("other read after chmod 644 = %v", err)
	}
	// chown: only root.
	if err := owner.Chown("/p/f", 2000, 200); wire.StatusOf(err) != wire.StatusPerm {
		t.Errorf("non-root chown = %v, want EPERM", err)
	}
	if err := root.Chown("/p/f", 2000, 200); err != nil {
		t.Fatal(err)
	}
	a, err := owner.StatFile("/p/f")
	if err != nil {
		t.Fatal(err)
	}
	if a.UID != 2000 || a.GID != 200 {
		t.Errorf("after chown: uid=%d gid=%d", a.UID, a.GID)
	}
}

func TestAncestorPermissionEnforced(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1, CheckPermissions: true})
	owner := newClient(t, c, ClientConfig{UID: 1000, GID: 100})
	other := newClient(t, c, ClientConfig{UID: 2000, GID: 200})
	owner.Mkdir("/priv", 0o700)
	owner.Mkdir("/priv/sub", 0o777)
	if err := other.Create("/priv/sub/f", 0o644); wire.StatusOf(err) != wire.StatusPerm {
		t.Errorf("create under non-traversable ancestor = %v, want EPERM", err)
	}
	if _, err := other.StatDir("/priv/sub"); wire.StatusOf(err) != wire.StatusPerm {
		t.Errorf("stat under non-traversable ancestor = %v, want EPERM", err)
	}
}

func TestFileReadWrite(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2, OSSCount: 2})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/io", 0o755)
	cl.Create("/io/f", 0o644)
	f, err := cl.Open("/io/f", true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Multi-block write (default block size 4096).
	data := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB
	n, err := f.WriteAt(data, 100)
	if err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if f.Size() != uint64(100+len(data)) {
		t.Errorf("Size = %d, want %d", f.Size(), 100+len(data))
	}
	buf := make([]byte, len(data))
	n, err = f.ReadAt(buf, 100)
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("read-back mismatch")
	}
	// The 100-byte hole reads as zeros.
	hole := make([]byte, 100)
	if n, err := f.ReadAt(hole, 0); err != nil || n != 100 {
		t.Fatalf("hole read = %d, %v", n, err)
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
	// Reads past EOF are short.
	if n, _ := f.ReadAt(buf, uint64(100+len(data))-10); n != 10 {
		t.Errorf("tail read = %d, want 10", n)
	}
	// Size visible via a fresh stat.
	a, err := cl.StatFile("/io/f")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != uint64(100+len(data)) {
		t.Errorf("stat size = %d", a.Size)
	}
}

func TestTruncateTrimsBlocks(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1, OSSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/t", 0o755)
	cl.Create("/t/f", 0o644)
	f, _ := cl.Open("/t/f", true)
	data := bytes.Repeat([]byte("x"), 64<<10)
	f.WriteAt(data, 0)
	f.Close()
	blocksBefore := c.OSS[0].BlockCount()
	if blocksBefore == 0 {
		t.Fatal("no blocks written")
	}
	if err := cl.Truncate("/t/f", 4096); err != nil {
		t.Fatal(err)
	}
	if got := c.OSS[0].BlockCount(); got >= blocksBefore {
		t.Errorf("blocks after truncate = %d, before = %d", got, blocksBefore)
	}
	a, _ := cl.StatFile("/t/f")
	if a.Size != 4096 {
		t.Errorf("size after truncate = %d", a.Size)
	}
	// Reopen and confirm the tail is gone.
	f2, _ := cl.Open("/t/f", false)
	defer f2.Close()
	buf := make([]byte, 10)
	if n, _ := f2.ReadAt(buf, 8000); n != 0 {
		t.Errorf("read past truncated size returned %d bytes", n)
	}
}

func TestRemoveReclaimsBlocks(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1, OSSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/t", 0o755)
	cl.Create("/t/f", 0o644)
	f, _ := cl.Open("/t/f", true)
	f.WriteAt(bytes.Repeat([]byte("y"), 32<<10), 0)
	f.Close()
	if c.OSS[0].BlockCount() == 0 {
		t.Fatal("no blocks written")
	}
	if err := cl.Remove("/t/f"); err != nil {
		t.Fatal(err)
	}
	if got := c.OSS[0].BlockCount(); got != 0 {
		t.Errorf("blocks after remove = %d, want 0", got)
	}
}

func TestUtimens(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/u", 0o755)
	cl.Create("/u/f", 0o644)
	if err := cl.Utimens("/u/f", 111, 222); err != nil {
		t.Fatal(err)
	}
	a, _ := cl.StatFile("/u/f")
	if a.ATime != 111 || a.MTime != 222 {
		t.Errorf("times = %d/%d, want 111/222", a.ATime, a.MTime)
	}
}

func TestRenameFilePreservesDataWithoutMovingBlocks(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4, OSSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/a", 0o755)
	cl.Mkdir("/b", 0o755)
	cl.Create("/a/f", 0o644)
	f, _ := cl.Open("/a/f", true)
	payload := []byte("rename should not move my data blocks")
	f.WriteAt(payload, 0)
	u := f.UUID()
	f.Close()
	blocks := c.OSS[0].BlockCount()

	if err := cl.RenameFile("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StatFile("/a/f"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("old name still stats: %v", err)
	}
	g, err := cl.Open("/b/g", false)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.UUID() != u {
		t.Error("file UUID changed across rename — blocks would be orphaned")
	}
	buf := make([]byte, len(payload))
	if n, err := g.ReadAt(buf, 0); err != nil || n != len(payload) || !bytes.Equal(buf, payload) {
		t.Errorf("data after rename = %q (%d, %v)", buf[:n], n, err)
	}
	if got := c.OSS[0].BlockCount(); got != blocks {
		t.Errorf("block count changed across rename: %d -> %d", blocks, got)
	}
}

func TestRenameDirSubtree(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/proj", 0o755)
	cl.Mkdir("/proj/src", 0o755)
	cl.Mkdir("/proj/src/pkg", 0o755)
	cl.Create("/proj/src/main.go", 0o644)
	cl.Create("/proj/src/pkg/lib.go", 0o644)

	moved, err := cl.RenameDir("/proj", "/project")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 { // /proj, /proj/src, /proj/src/pkg
		t.Errorf("moved = %d, want 3", moved)
	}
	// Everything is reachable under the new name...
	if _, err := cl.StatDir("/project/src/pkg"); err != nil {
		t.Errorf("stat new subtree: %v", err)
	}
	if _, err := cl.StatFile("/project/src/main.go"); err != nil {
		t.Errorf("stat file via new path: %v", err)
	}
	if _, err := cl.StatFile("/project/src/pkg/lib.go"); err != nil {
		t.Errorf("stat nested file via new path: %v", err)
	}
	// ...and gone under the old one.
	if _, err := cl.StatDir("/proj"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("old dir still exists: %v", err)
	}
	if _, err := cl.StatFile("/proj/src/main.go"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("file reachable via old path: %v", err)
	}
	// Readdir through the new path still sees the file entries.
	ents, err := cl.Readdir("/project/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Errorf("readdir after rename = %d entries, want 2", len(ents))
	}
}

func TestRenameDirInvalid(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/a", 0o755)
	cl.Mkdir("/a/b", 0o755)
	if _, err := cl.RenameDir("/a", "/a/b/c"); wire.StatusOf(err) != wire.StatusInval {
		t.Errorf("rename into own subtree = %v, want EINVAL", err)
	}
	cl.Mkdir("/x", 0o755)
	if _, err := cl.RenameDir("/a", "/x"); wire.StatusOf(err) != wire.StatusExist {
		t.Errorf("rename onto existing dir = %v, want EEXIST", err)
	}
	if _, err := cl.RenameDir("/missing", "/y"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("rename of missing dir = %v, want ENOENT", err)
	}
}

func TestClientCacheSavesTrips(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2, Link: netsim.Loopback})
	cached := newClient(t, c, ClientConfig{})
	uncached := newClient(t, c, ClientConfig{DisableCache: true})
	cached.Mkdir("/w", 0o755)
	uncached.Mkdir("/w2", 0o755)

	// Warm the cached client's directory entry.
	if err := cached.Create("/w/f0", 0o644); err != nil {
		t.Fatal(err)
	}
	const n = 50
	t0 := cached.Trips()
	for i := 1; i <= n; i++ {
		if err := cached.Create(fmt.Sprintf("/w/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cachedTrips := cached.Trips() - t0

	uncached.Create("/w2/f0", 0o644)
	t1 := uncached.Trips()
	for i := 1; i <= n; i++ {
		if err := uncached.Create(fmt.Sprintf("/w2/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	uncachedTrips := uncached.Trips() - t1

	if cachedTrips != n {
		t.Errorf("cached client used %d trips for %d creates, want %d (1/op)", cachedTrips, n, n)
	}
	if uncachedTrips != 2*n {
		t.Errorf("uncached client used %d trips for %d creates, want %d (2/op)", uncachedTrips, n, 2*n)
	}
	hits, _ := cached.CacheStats()
	if hits == 0 {
		t.Error("cache reported no hits")
	}
}

func TestCacheLeaseExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := startCluster(t, Options{FMSCount: 1})
	cl := newClient(t, c, ClientConfig{Lease: 30 * time.Second, Now: clock})
	cl.Mkdir("/lease", 0o755)
	cl.Create("/lease/f1", 0o644) // warms cache
	t0 := cl.Trips()
	cl.Create("/lease/f2", 0o644) // hit: 1 trip
	if got := cl.Trips() - t0; got != 1 {
		t.Fatalf("create with fresh lease took %d trips, want 1", got)
	}
	now = now.Add(31 * time.Second) // lease expires
	t1 := cl.Trips()
	cl.Create("/lease/f3", 0o644) // miss: lookup + create
	if got := cl.Trips() - t1; got != 2 {
		t.Fatalf("create with expired lease took %d trips, want 2", got)
	}
}

func TestCoupledModeEquivalence(t *testing.T) {
	// The CF ablation must be functionally identical to DF.
	for _, coupled := range []bool{false, true} {
		name := "decoupled"
		if coupled {
			name = "coupled"
		}
		t.Run(name, func(t *testing.T) {
			c := startCluster(t, Options{FMSCount: 2, CoupledFileMetadata: coupled})
			cl := newClient(t, c, ClientConfig{UID: 7})
			cl.Mkdir("/m", 0o755)
			if err := cl.Create("/m/f", 0o640); err != nil {
				t.Fatal(err)
			}
			if err := cl.Chmod("/m/f", 0o600); err != nil {
				t.Fatal(err)
			}
			if err := cl.Utimens("/m/f", 5, 6); err != nil {
				t.Fatal(err)
			}
			if err := cl.Truncate("/m/f", 12345); err != nil {
				t.Fatal(err)
			}
			a, err := cl.StatFile("/m/f")
			if err != nil {
				t.Fatal(err)
			}
			if a.Mode&0o777 != 0o600 || a.ATime != 5 || a.Size != 12345 {
				t.Errorf("attr = %+v", a)
			}
			if err := cl.Remove("/m/f"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHashDMSRenameStillCorrect(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 1, DMSOnHashStore: true})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/h", 0o755)
	cl.Mkdir("/h/x", 0o755)
	cl.Create("/h/x/f", 0o644)
	moved, err := cl.RenameDir("/h", "/h2")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Errorf("moved = %d, want 2", moved)
	}
	if _, err := cl.StatFile("/h2/x/f"); err != nil {
		t.Errorf("file lost after hash-mode rename: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4})
	setup := newClient(t, c, ClientConfig{})
	setup.Mkdir("/shared", 0o777)
	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := c.NewClient(ClientConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				p := fmt.Sprintf("/shared/c%d-f%d", w, i)
				if err := cl.Create(p, 0o644); err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ents, err := setup.Readdir("/shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != clients*perClient {
		t.Errorf("readdir sees %d entries, want %d", len(ents), clients*perClient)
	}
}

func TestTripCountsMatchPaperModel(t *testing.T) {
	// The trip counts behind Fig 6: mkdir = 1 trip; cached touch = 1 trip;
	// uncached touch = 2 trips (DMS lookup + FMS create).
	c := startCluster(t, Options{FMSCount: 4})
	cl := newClient(t, c, ClientConfig{})
	t0 := cl.Trips()
	cl.Mkdir("/ops", 0o755)
	if got := cl.Trips() - t0; got != 1 {
		t.Errorf("mkdir trips = %d, want 1", got)
	}
	t0 = cl.Trips()
	cl.Create("/ops/first", 0o644) // cold cache: lookup + create
	if got := cl.Trips() - t0; got != 2 {
		t.Errorf("cold create trips = %d, want 2", got)
	}
	t0 = cl.Trips()
	cl.Create("/ops/second", 0o644) // warm: create only
	if got := cl.Trips() - t0; got != 1 {
		t.Errorf("warm create trips = %d, want 1", got)
	}
	t0 = cl.Trips()
	cl.StatFile("/ops/first") // warm: 1 FMS trip
	if got := cl.Trips() - t0; got != 1 {
		t.Errorf("warm file-stat trips = %d, want 1", got)
	}
	// rmdir fans out to every FMS: lookup cached + 4 probes + 1 rmdir.
	cl.Mkdir("/ops/victim", 0o755)
	t0 = cl.Trips()
	if err := cl.Rmdir("/ops/victim"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Trips() - t0; got != uint64(1+c.opts.FMSCount)+1 {
		t.Errorf("rmdir trips = %d, want %d", got, 1+c.opts.FMSCount+1)
	}
}

// TestReaddirPagination lists a directory larger than the client's page
// size and verifies completeness (entries are fetched in multiple bounded
// pages under the hood).
func TestReaddirPagination(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2})
	cl := newClient(t, c, ClientConfig{})
	cl.Mkdir("/big", 0o755)
	total := client.ReaddirPageSize + 200
	for i := 0; i < total; i++ {
		if err := cl.Create(fmt.Sprintf("/big/f%05d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := cl.Mkdir(fmt.Sprintf("/big/d%05d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := cl.Readdir("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != total+40 {
		t.Fatalf("readdir = %d entries, want %d", len(ents), total+40)
	}
	seen := map[string]bool{}
	for i, e := range ents {
		if seen[e.Name] {
			t.Fatalf("duplicate entry %q", e.Name)
		}
		seen[e.Name] = true
		if i > 0 && ents[i-1].Name >= e.Name {
			t.Fatalf("unsorted at %d: %q >= %q", i, ents[i-1].Name, e.Name)
		}
	}
}
