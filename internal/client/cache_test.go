package client

import (
	"testing"
	"time"

	"locofs/internal/layout"
)

func freshInode(uidTag uint32) layout.DirInode {
	ino := layout.NewDirInode()
	ino.SetUID(uidTag)
	return ino
}

func TestCachePutGet(t *testing.T) {
	now := time.Now()
	c := newDirCache(30*time.Second, func() time.Time { return now })
	c.put("/a", freshInode(1))
	got, ok := c.get("/a")
	if !ok || got.UID() != 1 {
		t.Fatalf("get = %v, %v", got, ok)
	}
	if _, ok := c.get("/b"); ok {
		t.Error("got missing entry")
	}
	hits, misses := c.stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCacheLeaseExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := newDirCache(30*time.Second, clock)
	c.put("/a", freshInode(1))
	now = now.Add(29 * time.Second)
	if _, ok := c.get("/a"); !ok {
		t.Error("entry expired before lease")
	}
	now = now.Add(2 * time.Second) // lease was refreshed by put only, not get
	if _, ok := c.get("/a"); ok {
		t.Error("entry alive past lease")
	}
	if c.size() != 0 {
		t.Error("expired entry not evicted")
	}
}

func TestCachePutRefreshesLease(t *testing.T) {
	now := time.Now()
	c := newDirCache(30*time.Second, func() time.Time { return now })
	c.put("/a", freshInode(1))
	now = now.Add(20 * time.Second)
	c.put("/a", freshInode(2))
	now = now.Add(20 * time.Second) // 40s since first put, 20s since refresh
	got, ok := c.get("/a")
	if !ok || got.UID() != 2 {
		t.Errorf("refreshed entry = %v, %v", got, ok)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newDirCache(time.Hour, nil)
	c.put("/a", freshInode(1))
	c.invalidate("/a")
	if _, ok := c.get("/a"); ok {
		t.Error("invalidated entry still visible")
	}
}

func TestCacheInvalidateSubtree(t *testing.T) {
	c := newDirCache(time.Hour, nil)
	for _, p := range []string{"/a", "/a/b", "/a/b/c", "/ab", "/z"} {
		c.put(p, freshInode(1))
	}
	c.invalidateSubtree("/a")
	for _, gone := range []string{"/a", "/a/b", "/a/b/c"} {
		if _, ok := c.get(gone); ok {
			t.Errorf("%s survived subtree invalidation", gone)
		}
	}
	for _, kept := range []string{"/ab", "/z"} {
		if _, ok := c.get(kept); !ok {
			t.Errorf("%s wrongly invalidated", kept)
		}
	}
}

func TestCacheInvalidateSubtreeRoot(t *testing.T) {
	c := newDirCache(time.Hour, nil)
	c.put("/", freshInode(1))
	c.put("/x", freshInode(1))
	c.invalidateSubtree("/")
	if c.size() != 0 {
		t.Errorf("size = %d after invalidating /", c.size())
	}
}

func TestCacheStoresCopy(t *testing.T) {
	c := newDirCache(time.Hour, nil)
	ino := freshInode(1)
	c.put("/a", ino)
	ino.SetUID(99) // mutate caller's copy
	got, _ := c.get("/a")
	if got.UID() != 1 {
		t.Error("cache shares storage with caller")
	}
}

func TestCacheDefaultLease(t *testing.T) {
	c := newDirCache(0, nil)
	if c.lease != DefaultLease {
		t.Errorf("lease = %v, want %v", c.lease, DefaultLease)
	}
}
