package rpc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// startEcho builds a server on a fresh loopback network with an echo op.
func startEcho(t *testing.T) (*netsim.Network, *Server) {
	t.Helper()
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		out := append([]byte("echo:"), body...)
		return wire.StatusOK, out
	})
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	return n, s
}

func TestCallRoundTrip(t *testing.T) {
	n, _ := startEcho(t)
	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, body, err := c.Call(wire.Op(0x0F00), []byte("hi"))
	if err != nil || st != wire.StatusOK || string(body) != "echo:hi" {
		t.Errorf("Call = %v %q %v", st, body, err)
	}
	if c.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", c.Trips())
	}
}

func TestUnknownOp(t *testing.T) {
	n, _ := startEcho(t)
	c, _ := Dial(n, "srv")
	defer c.Close()
	st, _, err := c.Call(wire.Op(0x7777), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != wire.StatusInval {
		t.Errorf("unknown op status = %v, want EINVAL", st)
	}
}

func TestPingHandlerDefault(t *testing.T) {
	n, _ := startEcho(t)
	c, _ := Dial(n, "srv")
	defer c.Close()
	st, body, err := c.Call(wire.OpPing, []byte("p"))
	if err != nil || st != wire.StatusOK || string(body) != "p" {
		t.Errorf("ping = %v %q %v", st, body, err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	n := netsim.NewNetwork(netsim.LinkConfig{RTT: time.Millisecond})
	defer n.Close()
	s := NewServer()
	s.Handle(wire.Op(1), func(body []byte) (wire.Status, []byte) {
		return wire.StatusOK, body
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, _ := Dial(n, "srv")
	defer c.Close()

	const callers = 16
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("caller-%d", w))
			st, out, err := c.Call(wire.Op(1), body)
			if err != nil || st != wire.StatusOK || string(out) != string(body) {
				t.Errorf("caller %d: %v %q %v", w, st, out, err)
			}
		}(w)
	}
	wg.Wait()
	// Calls share the connection: 16 concurrent 1ms-RTT calls must take far
	// less than 16 sequential round trips.
	if elapsed := time.Since(start); elapsed > 8*time.Millisecond {
		t.Errorf("16 concurrent calls took %v — not multiplexed?", elapsed)
	}
	if c.Trips() != callers {
		t.Errorf("Trips = %d, want %d", c.Trips(), callers)
	}
}

func TestServerCountsServed(t *testing.T) {
	n, s := startEcho(t)
	c, _ := Dial(n, "srv")
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Call(wire.OpPing, nil)
	}
	if got := s.Served.Load(); got != 5 {
		t.Errorf("Served = %d, want 5", got)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServer()
	block := make(chan struct{})
	s.Handle(wire.Op(2), func(body []byte) (wire.Status, []byte) {
		<-block
		return wire.StatusOK, nil
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, _ := Dial(n, "srv")
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Call(wire.Op(2), nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("pending call succeeded after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("pending call not released by Close")
	}
	close(block)
	s.Shutdown()
}

func TestCallAfterClose(t *testing.T) {
	n, _ := startEcho(t)
	c, _ := Dial(n, "srv")
	c.Close()
	// The readLoop records the failure asynchronously; poll briefly.
	deadline := time.Now().Add(time.Second)
	for {
		_, _, err := c.Call(wire.OpPing, nil)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Call kept succeeding after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShutdownStopsAccept(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServer()
	l, _ := n.Listen("srv")
	served := make(chan struct{})
	go func() {
		s.Serve(l)
		close(served)
	}()
	c, _ := Dial(n, "srv")
	c.Call(wire.OpPing, nil)
	c.Close()
	s.Shutdown()
	select {
	case <-served:
	case <-time.After(time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := n.Dial("srv"); err == nil {
		t.Error("listener still reachable after Shutdown")
	}
}

func TestManySequentialCalls(t *testing.T) {
	n, _ := startEcho(t)
	c, _ := Dial(n, "srv")
	defer c.Close()
	for i := 0; i < 2000; i++ {
		st, _, err := c.Call(wire.OpPing, []byte{byte(i)})
		if err != nil || st != wire.StatusOK {
			t.Fatalf("call %d: %v %v", i, st, err)
		}
	}
	if c.Trips() != 2000 {
		t.Errorf("Trips = %d", c.Trips())
	}
}
