// Package locofs_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§4), plus
// micro-benchmarks of the core data paths. Run with
//
//	go test -bench=. -benchmem
//
// The Figure/Table benchmarks execute the same experiment runners as
// cmd/locofs-bench at reduced scale and report the key reproduced quantity
// as a custom metric (IOPS, RTT multiples, fractions) alongside Go's timing.
package locofs_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"locofs/internal/bench"
	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/kv"
	"locofs/internal/lsm"
	"locofs/internal/mdtest"
	"locofs/internal/netsim"
)

// benchEnv is the reduced-scale environment used by the testing.B harness.
func benchEnv() bench.Env {
	env := bench.Quick()
	env.LatItems = 40
	env.TputItems = 30
	return env
}

// reportCell parses a table cell like "123.4K", "1.3x" or "0.38" and
// reports it as a named benchmark metric.
func reportCell(b *testing.B, tbl *bench.Table, row, col int, metric string) {
	b.Helper()
	cell := tbl.Cell(row, col)
	s := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(cell, "K"), "x"), "us")
	s = strings.TrimSuffix(s, "s")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, cell)
	}
	if strings.HasSuffix(cell, "K") {
		v *= 1e3
	}
	b.ReportMetric(v, metric)
}

// runFigure runs one figure runner b.N times (they are deterministic, so
// N is usually 1) and returns the last table.
func runFigure(b *testing.B, fn func(bench.Env) (*bench.Table, error)) *bench.Table {
	b.Helper()
	env := benchEnv()
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = fn(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkFig1GapStudy regenerates Figure 1 (FS metadata vs raw KV gap).
func BenchmarkFig1GapStudy(b *testing.B) {
	tbl := runFigure(b, bench.Fig1)
	reportCell(b, tbl, 0, 1, "indexfs-frac-of-kv")
	reportCell(b, tbl, 0, 5, "locofs-frac-of-kv")
}

// BenchmarkTable1AccessMatrix regenerates the Table 1 live probe.
func BenchmarkTable1AccessMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ClientSaturation regenerates Table 3.
func BenchmarkTable3ClientSaturation(b *testing.B) {
	env := benchEnv()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TouchMkdirLatency regenerates Figure 6 and reports LocoFS-C
// touch latency in RTT multiples at one server.
func BenchmarkFig6TouchMkdirLatency(b *testing.B) {
	tbl := runFigure(b, bench.Fig6)
	reportCell(b, tbl, 0, 2, "locofs-touch-rtts")
	reportCell(b, tbl, 1, 2, "locofs-mkdir-rtts")
}

// BenchmarkFig7OpLatency regenerates Figure 7.
func BenchmarkFig7OpLatency(b *testing.B) {
	runFigure(b, bench.Fig7)
}

// BenchmarkFig8Throughput regenerates Figure 8 and reports LocoFS-C
// single-server create throughput.
func BenchmarkFig8Throughput(b *testing.B) {
	tbl := runFigure(b, bench.Fig8)
	reportCell(b, tbl, 1, 2, "locofs-1srv-touch-iops")
}

// BenchmarkFig9GapBridging regenerates Figure 9 and reports the 1-server
// fraction of the raw KV store (paper: 0.38).
func BenchmarkFig9GapBridging(b *testing.B) {
	tbl := runFigure(b, bench.Fig9)
	reportCell(b, tbl, 0, 3, "frac-of-kv")
}

// BenchmarkFig10Colocated regenerates Figure 10 (software-only latency).
func BenchmarkFig10Colocated(b *testing.B) {
	tbl := runFigure(b, bench.Fig10)
	reportCell(b, tbl, 1, 1, "locofs-touch-us")
}

// BenchmarkFig11DecoupledMetadata regenerates Figure 11.
func BenchmarkFig11DecoupledMetadata(b *testing.B) {
	tbl := runFigure(b, bench.Fig11)
	reportCell(b, tbl, 0, 1, "df-chmod-iops")
	reportCell(b, tbl, 0, 2, "cf-chmod-iops")
}

// BenchmarkFig12FullSystemIO regenerates Figure 12.
func BenchmarkFig12FullSystemIO(b *testing.B) {
	runFigure(b, bench.Fig12)
}

// BenchmarkFig13DepthSensitivity regenerates Figure 13.
func BenchmarkFig13DepthSensitivity(b *testing.B) {
	runFigure(b, bench.Fig13)
}

// BenchmarkFig14RenameOverhead regenerates Figure 14 and reports the
// modeled seconds of the largest btree-SSD and hash-SSD renames.
func BenchmarkFig14RenameOverhead(b *testing.B) {
	tbl := runFigure(b, bench.Fig14)
	last := len(tbl.Rows) - 1
	reportCell(b, tbl, last, 1, "btree-ssd-sec")
	reportCell(b, tbl, last, 3, "hash-ssd-sec")
}

// ---- Micro-benchmarks of the core data paths (real wall time). ----

// BenchmarkKVBTreePut measures the B+-tree engine's insert path.
func BenchmarkKVBTreePut(b *testing.B) {
	s := kv.NewBTreeStore()
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

// BenchmarkKVBTreeGet measures the B+-tree engine's lookup path.
func BenchmarkKVBTreeGet(b *testing.B) {
	s := kv.NewBTreeStore()
	val := make([]byte, 64)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}

// BenchmarkKVHashPut measures the hash engine's insert path.
func BenchmarkKVHashPut(b *testing.B) {
	s := kv.NewHashStore()
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

// BenchmarkKVPatchInPlace measures the serialization-free field update the
// decoupled file metadata design relies on (§3.3.3).
func BenchmarkKVPatchInPlace(b *testing.B) {
	s := kv.NewHashStore()
	s.Put([]byte("k"), make([]byte, 44))
	patch := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PatchInPlace([]byte("k"), 16, patch)
	}
}

// BenchmarkLSMPut measures the LSM store's insert path (the IndexFS
// baseline's storage engine).
func BenchmarkLSMPut(b *testing.B) {
	s := lsm.MustNew(nil)
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

// BenchmarkBTreeMovePrefix measures the d-rename primitive: relocating a
// 1000-record subtree prefix in the tree engine.
func BenchmarkBTreeMovePrefix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := kv.NewBTreeStore()
		for j := 0; j < 1000; j++ {
			s.Put([]byte(fmt.Sprintf("P:/old/d%04d", j)), make([]byte, 256))
		}
		b.StartTimer()
		if n := s.MovePrefix([]byte("P:/old/"), []byte("P:/new/")); n != 1000 {
			b.Fatalf("moved %d", n)
		}
	}
}

// BenchmarkLocoFSCreate measures the end-to-end wall cost of a file create
// through the full client/RPC/FMS stack (loopback fabric, no cost model).
func BenchmarkLocoFSCreate(b *testing.B) {
	cluster, err := core.Start(core.Options{FMSCount: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Mkdir("/bench", 0o755); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Create(fmt.Sprintf("/bench/f%d", i), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocoFSStat measures the end-to-end wall cost of a file stat.
func BenchmarkLocoFSStat(b *testing.B) {
	cluster, err := core.Start(core.Options{FMSCount: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	cl.Mkdir("/bench", 0o755)
	cl.Create("/bench/f", 0o644)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.StatFile("/bench/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMdtestWorkload measures a complete small mdtest cycle end to end.
func BenchmarkMdtestWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cluster, err := core.Start(core.Options{FMSCount: 2, Link: netsim.Loopback})
		if err != nil {
			b.Fatal(err)
		}
		newFS := func() (fsapi.FS, error) {
			cl, err := cluster.NewClient(core.ClientConfig{})
			if err != nil {
				return nil, err
			}
			return fsapi.LocoFS{C: cl}, nil
		}
		b.StartTimer()
		if _, err := mdtest.Run(mdtest.Config{Clients: 4, ItemsPerClient: 50}, newFS); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cluster.Close()
		b.StartTimer()
	}
}
