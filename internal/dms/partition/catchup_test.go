package partition

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// fastRep shrinks the replication timeout so exclusion tests run in
// milliseconds instead of the production default.
func fastRep(cfg *Config) { cfg.RepTimeout = 60 * time.Millisecond }

// dumpStore snapshots a replica's KV state, minus the root inode ("P:/"):
// the root is created locally at construction with a wall-clock ctime, not
// through log replay, so it is the one key that legitimately differs
// between replicas. Everything the log produced must match byte-for-byte.
func dumpStore(s *kv.Instrumented) map[string]string {
	out := map[string]string{}
	s.ForEach(func(k, v []byte) bool {
		if string(k) != "P:/" {
			out[string(k)] = string(v)
		}
		return true
	})
	return out
}

// TestCatchUpRejoin: a follower that misses appends while blackholed is
// excluded, replays the missed range via catch-up, rejoins the live
// fan-out set, and ends byte-identical with the leader — with subsequent
// acked mutations landing on it again (the acceptance-criteria e2e at the
// node layer).
func TestCatchUpRejoin(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f1", "f2"), fastRep)
	if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody("/d0"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir /d0: %v", st)
	}

	// f2 goes dark: appends to it vanish (sends still succeed, so only the
	// replication deadline detects it), and the leader excludes it.
	ts.net.SetFault("f2", netsim.FaultConfig{Blackhole: true})
	for i := 1; i <= 3; i++ {
		if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody(fmt.Sprintf("/d%d", i)), uint64(1+i)); st != wire.StatusOK {
			t.Fatalf("mkdir during blackhole: %v", st)
		}
	}
	if exc := ts.nodes["l"].Excluded(); len(exc) != 1 || exc[0] != "f2" {
		t.Fatalf("excluded = %v, want [f2]", exc)
	}
	if got := ts.nodes["f2"].LogLen(); got >= ts.nodes["l"].LogLen() {
		t.Fatalf("blackholed follower log length %d not behind leader's %d", got, ts.nodes["l"].LogLen())
	}

	// Network heals; the follower pulls itself to the tip and rejoins.
	ts.net.SetFault("f2", netsim.FaultConfig{})
	if err := ts.nodes["f2"].CatchUp(); err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	if exc := ts.nodes["l"].Excluded(); len(exc) != 0 {
		t.Fatalf("excluded after rejoin = %v, want none", exc)
	}

	// Acked ⇒ on every non-excluded replica must hold across the rejoin:
	// a fresh mutation lands on f2 too.
	if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody("/after"), 9); st != wire.StatusOK {
		t.Fatalf("mkdir after rejoin: %v", st)
	}
	want := ts.nodes["l"].LogLen()
	for _, addr := range []string{"f1", "f2"} {
		if got := ts.nodes[addr].LogLen(); got != want {
			t.Fatalf("%s log length = %d, want %d", addr, got, want)
		}
	}
	ref := dumpStore(ts.stores["l"])
	for _, addr := range []string{"f1", "f2"} {
		if got := dumpStore(ts.stores[addr]); !reflect.DeepEqual(got, ref) {
			t.Errorf("%s store differs from leader's after rejoin (%d vs %d keys)", addr, len(got), len(ref))
		}
	}
}

// TestTruncationBoundsLogAndLateRetry: the retained log and the dedup
// table stay near the cap under sustained load, a retry older than the
// pruned watermark is refused with EEXPIRED (never re-executed), and
// retries above the watermark — and other clients entirely — are
// unaffected.
func TestTruncationBoundsLogAndLateRetry(t *testing.T) {
	const cap = 8
	ts := startShard(t, onePartitionMap("l", "f"), func(cfg *Config) { cfg.LogCap = cap })
	base := uint64(5) << 24 // one client's dedup-id base, 24-bit sequence below
	const total = 40
	for i := 1; i <= total; i++ {
		if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody(fmt.Sprintf("/d%02d", i)), base|uint64(i)); st != wire.StatusOK {
			t.Fatalf("mkdir %d: %v", i, st)
		}
	}
	if got := ts.nodes["l"].LogRetained(); got > cap {
		t.Errorf("leader retained log = %d, want <= %d", got, cap)
	}
	if got := ts.nodes["l"].DedupLen(); got > cap {
		t.Errorf("leader dedup table = %d, want <= %d", got, cap)
	}
	// The follower mirrors the leader's floor from the value piggybacked on
	// the next append, so it lags the leader's own prune by one entry.
	if got := ts.nodes["f"].LogRetained(); got > cap+1 {
		t.Errorf("follower retained log = %d, want <= %d", got, cap+1)
	}
	if got := ts.nodes["f"].DedupLen(); got > cap+1 {
		t.Errorf("follower dedup table = %d, want <= %d", got, cap+1)
	}

	// A retry from below the pruned watermark: its applied record is gone,
	// so the node can no longer tell it from a fresh request — it must be
	// refused, not re-executed (re-executing would return EEXIST here and,
	// for a non-idempotent op, double-apply). The retries go straight to
	// the node handler: the rpc server's own dedup window still remembers
	// these ids, but that window dies with its process — the node-level
	// guard is what a retry hitting a promoted leader meets.
	if st, _ := ts.nodes["l"].serveMutation(wire.OpMkdir, base|1, mkdirBody("/d01")); st != wire.StatusExpired {
		t.Fatalf("late retry below watermark = %v, want EEXPIRED", st)
	}
	// A retry still above the watermark replays its recorded response.
	if st, _ := ts.nodes["l"].serveMutation(wire.OpMkdir, base|total, mkdirBody("/d40")); st != wire.StatusOK {
		t.Fatalf("retry above watermark = %v, want OK replay", st)
	}
	// The floor is per client: another client's sequence 1 is fresh.
	if st, _ := ts.nodes["l"].serveMutation(wire.OpMkdir, uint64(6)<<24|1, mkdirBody("/other")); st != wire.StatusOK {
		t.Fatalf("other client's first request = %v, want OK", st)
	}
}

// TestExcludedResetOnMapInstall: installing a map whose group no longer
// lists an excluded address drops the exclusion (and its ack/catch-up
// bookkeeping) — a replaced replica must not haunt the new group.
func TestExcludedResetOnMapInstall(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"), fastRep)
	ts.net.SetFault("f", netsim.FaultConfig{Blackhole: true})
	if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody("/d"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir: %v", st)
	}
	if exc := ts.nodes["l"].Excluded(); len(exc) != 1 {
		t.Fatalf("excluded = %v, want [f]", exc)
	}
	pm2 := &wire.PartMap{Ver: 2, Groups: [][]string{{"l", "g"}}}
	if st, _ := ts.call(t, "l", wire.OpSetPartMap, wire.EncodeSetPartMap(pm2, 0, 0), 0); st != wire.StatusOK {
		t.Fatalf("map install: %v", st)
	}
	if exc := ts.nodes["l"].Excluded(); len(exc) != 0 {
		t.Fatalf("excluded after reconciling map install = %v, want none", exc)
	}
}

// TestStrayFetcherNotReadmitted: a fetcher outside the installed group is
// refused — it must not be able to rejoin or pin truncation.
func TestStrayFetcherNotReadmitted(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"))
	st, _ := ts.call(t, "l", wire.OpLogFetch, wire.EncodeLogFetch("stranger", 0, 16), 0)
	if st != wire.StatusInval {
		t.Fatalf("stray OpLogFetch = %v, want EINVAL", st)
	}
}

// TestCatchupPastTruncatedLogRefused: a replica whose needed range was
// already pruned cannot be repaired from the log — the leader answers
// EEXPIRED rather than serving a hole.
func TestCatchupPastTruncatedLogRefused(t *testing.T) {
	const cap = 4
	ts := startShard(t, onePartitionMap("l", "f"), func(cfg *Config) { cfg.LogCap = cap })
	for i := 1; i <= 20; i++ {
		if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody(fmt.Sprintf("/d%02d", i)), uint64(i)); st != wire.StatusOK {
			t.Fatalf("mkdir %d: %v", i, st)
		}
	}
	st, _ := ts.call(t, "l", wire.OpLogFetch, wire.EncodeLogFetch("f", 0, 16), 0)
	if st != wire.StatusExpired {
		t.Fatalf("fetch below retained floor = %v, want EEXPIRED", st)
	}
}

// TestNoStallUnderBlackholedFollower: with one follower dark, a mutation
// costs at most the replication timeout (the follower is excluded), not a
// hang, and the next mutations run at full speed — replication fan-out no
// longer happens under the partition lock.
func TestNoStallUnderBlackholedFollower(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f1", "f2"), fastRep)
	ts.net.SetFault("f2", netsim.FaultConfig{Blackhole: true})
	start := time.Now()
	if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody("/d"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir: %v", st)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("mutation under blackholed follower took %v", el)
	}
	// Excluded now: subsequent mutations pay no timeout at all.
	start = time.Now()
	for i := 2; i <= 5; i++ {
		if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody(fmt.Sprintf("/d%d", i)), uint64(i)); st != wire.StatusOK {
			t.Fatalf("mkdir %d: %v", i, st)
		}
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("mutations after exclusion took %v", el)
	}
	// Reads never touched the replication path and still serve.
	if st, _ := ts.call(t, "l", wire.OpStatDir, statBody("/d"), 0); st != wire.StatusOK {
		t.Fatal("read during exclusion failed")
	}
}

// TestMintTxIDAcrossPromotion: regression for the coordinator txid scheme.
// The old `txSeq | 1<<63` restarted at zero on a promoted leader, so its
// first minted id collided with the failed leader's first transaction —
// whose response is still in the replicated applied table — and a fresh
// no-dedup-id rename would replay that stale response instead of running.
// Folding the map version into minted ids makes successive leaders' ids
// disjoint.
func TestMintTxIDAcrossPromotion(t *testing.T) {
	ts := startShard(t, twoPartitionMap())
	for i, p := range []string{"/b", "/a", "/a/src", "/a/src2"} {
		if st, _ := ts.call(t, "p0-l", wire.OpMkdir, mkdirBody(p), uint64(i+1)); st != wire.StatusOK {
			t.Fatalf("mkdir %s: %v", p, st)
		}
	}
	// First rename: no client dedup id, so the coordinator mints txid #1.
	// The coordinator "crashes" after logging the commit decision; the
	// decision (and its applied-table record under the minted txid) is
	// replicated on both source replicas.
	ts.nodes["p0-l"].CrashAfterCommit.Store(true)
	if st, _ := ts.call(t, "p0-l", wire.OpRenameDir, renameBody("/a/src", "/b/dst"), 0); st != wire.StatusIO {
		t.Fatalf("crash-injected rename = %v, want EIO", st)
	}
	ts.rss["p0-l"].Shutdown()
	pm2 := &wire.PartMap{
		Ver:    2,
		Cuts:   []wire.PartCut{{Dir: "/b", PID: 1}},
		Groups: [][]string{{"p0-f"}, {"p1-l", "p1-f"}},
	}
	for addr, pid := range map[string]uint32{"p0-f": 0, "p1-l": 1, "p1-f": 1} {
		idx := 0
		if addr == "p1-f" {
			idx = 1
		}
		if st, _ := ts.call(t, addr, wire.OpSetPartMap, wire.EncodeSetPartMap(pm2, pid, idx), 0); st != wire.StatusOK {
			t.Fatalf("map push to %s: %v", addr, st)
		}
	}
	// Recovery on the promoted leader re-drove the commit.
	if st, _ := ts.call(t, "p1-l", wire.OpStatDir, statBody("/b/dst"), 0); st != wire.StatusOK {
		t.Fatalf("recovered rename destination = %v, want OK", st)
	}
	// Fresh no-dedup-id rename from the promoted leader: its minted txid
	// must not collide with the old leader's, or the dedup check replays
	// the old transaction's response and the rename silently never runs.
	if st, _ := ts.call(t, "p0-f", wire.OpRenameDir, renameBody("/a/src2", "/b/dst2"), 0); st != wire.StatusOK {
		t.Fatalf("fresh rename on promoted leader = %v, want OK", st)
	}
	if st, _ := ts.call(t, "p1-l", wire.OpStatDir, statBody("/b/dst2"), 0); st != wire.StatusOK {
		t.Fatalf("fresh rename's destination = %v, want OK — the rename never executed", st)
	}
}

// TestPeriodicCatchupRejoins: with CatchupEvery set, an excluded follower
// rejoins on its own once the network heals — no append gap needed to
// trip it.
func TestPeriodicCatchupRejoins(t *testing.T) {
	ts := startShard(t, onePartitionMap("l", "f"), fastRep,
		func(cfg *Config) { cfg.CatchupEvery = 30 * time.Millisecond })
	ts.net.SetFault("f", netsim.FaultConfig{Blackhole: true})
	if st, _ := ts.call(t, "l", wire.OpMkdir, mkdirBody("/d"), 1); st != wire.StatusOK {
		t.Fatalf("mkdir: %v", st)
	}
	// The mkdir's fan-out timed out and excluded f — but the blackhole
	// gates connections *to* f, not f's own fetches to the leader, so a
	// periodic probe may have re-admitted it already. Either state is
	// legal here; the property under test is that the follower converges
	// with no manual CatchUp call.
	ts.net.SetFault("f", netsim.FaultConfig{})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(ts.nodes["l"].Excluded()) == 0 && ts.nodes["f"].LogLen() == ts.nodes["l"].LogLen() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower did not rejoin via periodic catch-up: excluded=%v", ts.nodes["l"].Excluded())
}
