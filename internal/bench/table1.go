package bench

import (
	"sort"
	"strings"
	"sync"

	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/kv"
	"locofs/internal/uuid"
)

// recordingStore wraps a kv.Store and records which metadata regions
// (distinguished by key prefix) each operation reads and writes. It powers
// the live verification of the paper's Table 1.
type recordingStore struct {
	kv.Store
	mu     sync.Mutex
	reads  map[string]bool
	writes map[string]bool
}

func newRecordingStore(inner kv.Store) *recordingStore {
	return &recordingStore{Store: inner, reads: map[string]bool{}, writes: map[string]bool{}}
}

func (r *recordingStore) mark(m map[string]bool, key []byte) {
	if len(key) < 2 {
		return
	}
	r.mu.Lock()
	m[string(key[:2])] = true
	r.mu.Unlock()
}

func (r *recordingStore) reset() {
	r.mu.Lock()
	r.reads = map[string]bool{}
	r.writes = map[string]bool{}
	r.mu.Unlock()
}

// touched returns the recorded region prefixes, reads and writes merged,
// suffixed with R/W markers.
func (r *recordingStore) touched() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]string{}
	for p := range r.reads {
		out[p] += "R"
	}
	for p := range r.writes {
		out[p] += "W"
	}
	return out
}

// Get implements kv.Store.
func (r *recordingStore) Get(key []byte) ([]byte, bool) {
	r.mark(r.reads, key)
	return r.Store.Get(key)
}

// Put implements kv.Store.
func (r *recordingStore) Put(key, value []byte) {
	r.mark(r.writes, key)
	r.Store.Put(key, value)
}

// Delete implements kv.Store.
func (r *recordingStore) Delete(key []byte) bool {
	r.mark(r.writes, key)
	return r.Store.Delete(key)
}

// PatchInPlace implements kv.Store.
func (r *recordingStore) PatchInPlace(key []byte, off int, data []byte) bool {
	r.mark(r.writes, key)
	return r.Store.PatchInPlace(key, off, data)
}

// ReadAt implements kv.Store.
func (r *recordingStore) ReadAt(key []byte, off int, buf []byte) bool {
	r.mark(r.reads, key)
	return r.Store.ReadAt(key, off, buf)
}

// AppendValue implements kv.Store.
func (r *recordingStore) AppendValue(key, data []byte) {
	r.mark(r.writes, key)
	r.Store.AppendValue(key, data)
}

// Table1 verifies the paper's Table 1 live: it runs each metadata operation
// against instrumented DMS/FMS servers and reports which metadata regions
// the operation read (R) and wrote (W).
func Table1() (*Table, error) {
	t := &Table{
		Title:   "Table 1: metadata regions touched per operation (live probe)",
		Note:    "R = read, W = written; regions: dir-inode, subdir-dirent (DMS), file-access, file-content, file-dirent (FMS)",
		Headers: []string{"op", "dir-inode", "subdir-dirent", "file-access", "file-content", "file-dirent"},
	}
	dstore := newRecordingStore(kv.NewBTreeStore())
	fstore := newRecordingStore(kv.NewHashStore())
	d := dms.New(dms.Options{Store: dstore})
	f := fms.New(fms.Options{Store: fstore, ServerID: 1})

	// Fixture: a directory with one pre-existing file.
	dirUUID, st := d.Mkdir("/dir", 0o755, 0, 0)
	if err := st.Err(); err != nil {
		return nil, err
	}
	if _, st := f.Create(dirUUID, "pre", 0o644, 0, 0); st.Err() != nil {
		return nil, st.Err()
	}

	type probe struct {
		op string
		fn func() error
	}
	probes := []probe{
		{"mkdir", func() error {
			_, st := d.Mkdir("/dir/sub", 0o755, 0, 0)
			return st.Err()
		}},
		{"readdir", func() error {
			if _, _, st := d.ReaddirSubdirs("/dir", 0, 0, "", 0); st.Err() != nil {
				return st.Err()
			}
			f.ReaddirFiles(dirUUID, "", 0)
			return nil
		}},
		{"rmdir", func() error {
			if f.DirHasFiles(uuid.New(99, 99)) { // emptiness probe of the target
				return nil
			}
			return d.Rmdir("/dir/sub", 0, 0).Err()
		}},
		{"create", func() error {
			_, st := f.Create(dirUUID, "probe", 0o644, 0, 0)
			return st.Err()
		}},
		{"getattr", func() error {
			_, st := f.Getattr(dirUUID, "probe")
			return st.Err()
		}},
		{"open", func() error {
			_, st := f.Open(dirUUID, "probe", 0, 0, false)
			return st.Err()
		}},
		{"chmod", func() error { return f.Chmod(dirUUID, "probe", 0o600, 0).Err() }},
		{"chown", func() error { return f.Chown(dirUUID, "probe", 1, 1, 0).Err() }},
		{"write", func() error { return f.UpdateSize(dirUUID, "probe", 4096).Err() }},
		{"truncate", func() error {
			_, _, _, st := f.Truncate(dirUUID, "probe", 0)
			return st.Err()
		}},
		{"remove", func() error {
			_, st := f.Remove(dirUUID, "probe", 0, 0)
			return st.Err()
		}},
	}
	for _, p := range probes {
		dstore.reset()
		fstore.reset()
		if err := p.fn(); err != nil {
			return nil, err
		}
		touched := map[string]string{}
		for k, v := range dstore.touched() {
			touched[k] += v
		}
		for k, v := range fstore.touched() {
			touched[k] += v
		}
		row := []string{p.op}
		for _, prefix := range []string{"P:", "S:", "A:", "C:", "D:"} {
			marks := touched[prefix]
			if marks == "" {
				marks = "-"
			} else {
				marks = sortMarks(marks)
			}
			row = append(row, marks)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// sortMarks canonicalizes an RW marker string.
func sortMarks(s string) string {
	parts := strings.Split(s, "")
	sort.Strings(parts)
	out := strings.Join(parts, "")
	// Deduplicate (an op may both read and write a region repeatedly).
	var sb strings.Builder
	for i := 0; i < len(out); i++ {
		if i == 0 || out[i] != out[i-1] {
			sb.WriteByte(out[i])
		}
	}
	return sb.String()
}
