package client

import (
	"time"

	"locofs/internal/wire"
)

// Lease coherence, client side (DESIGN.md §14). Every DMS response header
// carries the server's recall sequence (wire.Msg.Lease); observeLease feeds
// it into the cache's maxSeq watermark. When the watermark runs ahead of
// what the cache has applied, cached entries stop being served (they might
// be stale) and the next DMS round trip piggybacks an OpLeaseRecall fetch —
// so catching up costs zero extra trips. Mutation responses additionally
// carry a publication trailer (decodePub) letting the mutating client
// account for its own recalls without any fetch.

// DefaultHotRefreshInterval is the hot-tier refresher period when
// Config.HotRefreshInterval is zero.
const DefaultHotRefreshInterval = 5 * time.Second

// observeLease receives the recall sequence stamped on every response
// header (rpc.CallSpec.OnLease) by the single unsharded DMS. TTL-only
// caches ignore it: they trust entries for the configured lease regardless
// of server-side mutations.
func (c *Client) observeLease(seq uint64) { c.observeLeaseFrom(0, seq) }

// observeLeaseFrom receives a recall sequence stamped by DMS partition src.
// Each partition endpoint's OnLease hook is bound to its partition id, so
// the per-source cache watermarks never mix incomparable sequences.
func (c *Client) observeLeaseFrom(src uint32, seq uint64) {
	if ca := c.cache; ca != nil && ca.coherent {
		ca.observeFrom(src, seq)
	}
}

// cacheBehind reports whether the cache must fetch missed recalls from
// source src, and that source's applied watermark to fetch from.
func (c *Client) cacheBehind(src uint32) (since uint64, ok bool) {
	if c.cache == nil {
		return 0, false
	}
	return c.cache.behindFrom(src)
}

// applyRecallResp decodes an OpLeaseRecall response body fetched from
// source src and applies it.
func (c *Client) applyRecallResp(src uint32, body []byte) {
	if c.cache == nil {
		return
	}
	cur, reset, entries, err := wire.DecodeRecallResp(body)
	if err != nil {
		return
	}
	c.cache.applyRecallsFrom(src, cur, reset, entries)
}

// decodePub reads the publication trailer (last recall sequence, entry
// count) a successful DMS mutation response ends with. A body too short to
// hold the trailer reads as zero, which selfApply treats as "drop
// unconditionally" — defense-in-depth only: any server speaking the
// current 61-byte wire header also writes the trailer (the header growth
// was a flag-day protocol break, see DESIGN.md §14), so a short body here
// means a malformed response, not an older server.
func decodePub(d *wire.Dec) (last uint64, n uint32) {
	if d.Remaining() >= 12 {
		last = d.U64()
		n = d.U32()
	}
	return last, n
}

// hotRefreshPoll paces the wall-clock polls of an injected clock: fast
// enough to track a virtual clock running well ahead of real time, cheap
// enough to idle (one channel receive per tick).
const hotRefreshPoll = time.Millisecond

// hotRefreshLoop periodically promotes the client's most-resolved
// directories into the hot tier and refreshes their leases. clk is the
// injected clock (Config.Now), or nil for real time. With an injected
// clock the refresh cadence follows *that* clock — a real ticker only
// paces the polls — so virtual-time tests and benchmarks model the hot
// tier consistently instead of refreshing on wall time.
func (c *Client) hotRefreshLoop(n int, interval time.Duration, clk func() time.Time) {
	defer close(c.hotDone)
	if clk == nil {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.hotStop:
				return
			case <-t.C:
				c.refreshHot(n)
			}
		}
	}
	t := time.NewTicker(hotRefreshPoll)
	defer t.Stop()
	last := clk()
	for {
		select {
		case <-c.hotStop:
			return
		case <-t.C:
			if now := clk(); now.Sub(last) >= interval {
				last = now
				c.refreshHot(n)
			}
		}
	}
}

// refreshHot ranks the top n resolved directories, installs them as the hot
// set (so subsequent puts stretch their leases), and re-resolves them — in
// one batched DMS round trip per partition when batching is enabled — so
// hot entries are renewed in the background instead of expiring under
// foreground traffic. Against a sharded DMS the hot paths are grouped by
// their owning partition leader first (one group, the bootstrap endpoint,
// when unsharded).
func (c *Client) refreshHot(n int) {
	ca := c.cache
	if ca == nil || ca.hot == nil {
		return
	}
	top := ca.hot.Top(n)
	if len(top) == 0 {
		return
	}
	set := make(map[string]struct{}, len(top))
	for _, h := range top {
		set[h.Key] = struct{}{}
	}
	ca.setHot(set)
	oc := c.startOp("HotRefresh")
	var err error
	defer func() { oc.finish(err) }()
	type hotGroup struct {
		e     *endpoint
		src   uint32
		paths []string
	}
	byEp := make(map[*endpoint]*hotGroup)
	var order []*hotGroup
	for _, h := range top {
		e, src, rerr := c.routeDMS(h.Key, false)
		if rerr != nil {
			continue
		}
		g, ok := byEp[e]
		if !ok {
			g = &hotGroup{e: e, src: src}
			byEp[e] = g
			order = append(order, g)
		}
		g.paths = append(g.paths, h.Key)
	}
	for _, g := range order {
		if gerr := c.refreshHotGroup(oc, g.e, g.src, g.paths); gerr != nil {
			err = gerr
			return
		}
	}
}

// refreshHotGroup re-resolves one endpoint's hot paths, piggybacking that
// source's recall catch-up on the batch (or issuing it standalone with
// batching disabled).
func (c *Client) refreshHotGroup(oc opCtx, e *endpoint, src uint32, paths []string) error {
	if c.disableBatch {
		for _, p := range paths {
			body := wire.NewEnc().Str(p).U32(c.uid).U32(c.gid).Bytes()
			st, resp, cerr := e.CallT(oc, wire.OpLookupDir, body)
			if cerr != nil {
				return cerr
			}
			if st == wire.StatusOK {
				c.cacheLookupChainFrom(src, p, resp)
			}
		}
		if since, behind := c.cacheBehind(src); behind {
			// No batch to piggyback on: fetch missed recalls standalone so
			// the refreshed entries become servable (see resolveDir).
			st, resp, cerr := e.CallT(oc, wire.OpLeaseRecall, wire.EncodeRecallReq(since))
			if cerr == nil && st == wire.StatusOK {
				c.applyRecallResp(src, resp)
			}
		}
		return nil
	}
	subs := make([]wire.SubReq, 0, len(paths)+1)
	for _, p := range paths {
		subs = append(subs, wire.SubReq{
			Op:   wire.OpLookupDir,
			Body: wire.NewEnc().Str(p).U32(c.uid).U32(c.gid).Bytes(),
		})
	}
	recallAt := -1
	if since, behind := c.cacheBehind(src); behind {
		recallAt = len(subs)
		subs = append(subs, wire.SubReq{Op: wire.OpLeaseRecall, Body: wire.EncodeRecallReq(since)})
	}
	resps, _, err := e.CallBatch(oc, subs)
	if err != nil {
		return err
	}
	for i, p := range paths {
		if resps[i].Status == wire.StatusOK {
			c.cacheLookupChainFrom(src, p, resps[i].Body)
		}
	}
	if recallAt >= 0 && resps[recallAt].Status == wire.StatusOK {
		c.applyRecallResp(src, resps[recallAt].Body)
	}
	return nil
}
