package client

import (
	"log"
	"sync"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// clientTelem is the telemetry sink shared by every endpoint of one client:
// per-op round-trip histograms and call counters, plus the slow-call log
// threshold. The per-op handle cache keeps the hot path off the registry
// lock.
type clientTelem struct {
	reg  *telemetry.Registry
	slow time.Duration // 0 = slow-call logging disabled
	byOp sync.Map      // wire.Op -> *clientOpMetrics
}

type clientOpMetrics struct {
	rtt   *telemetry.Histogram
	calls *telemetry.Counter
}

func (t *clientTelem) forOp(op wire.Op) *clientOpMetrics {
	if m, ok := t.byOp.Load(op); ok {
		return m.(*clientOpMetrics)
	}
	label := telemetry.L("op", op.String())
	m := &clientOpMetrics{
		rtt:   t.reg.Histogram(rpc.MetricRTT, label),
		calls: t.reg.Counter(rpc.MetricCalls, label),
	}
	actual, _ := t.byOp.LoadOrStore(op, m)
	return actual.(*clientOpMetrics)
}

// endpoint is one server connection with transparent re-dial: a call that
// fails at the transport layer redials the address once and retries, so a
// server restarted on durable state (locofsd -data) resumes serving
// existing clients. Application-level statuses are never retried.
//
// Trip and virtual-time counters aggregate across connection generations,
// so measurement hooks see one continuous stream.
type endpoint struct {
	dialer netsim.Dialer
	addr   string
	link   netsim.LinkConfig
	telem  *clientTelem // never nil

	mu        sync.Mutex
	cl        *rpc.Client
	baseTrips uint64
	baseVirt  time.Duration
	closed    bool
}

// dialEndpoint connects the first generation.
func dialEndpoint(d netsim.Dialer, addr string, link netsim.LinkConfig, telem *clientTelem) (*endpoint, error) {
	e := &endpoint{dialer: d, addr: addr, link: link, telem: telem}
	cl, err := rpc.Dial(d, addr)
	if err != nil {
		return nil, err
	}
	cl.SetLink(link)
	e.cl = cl
	return e, nil
}

// current returns the live connection, redialing if the previous one died.
func (e *endpoint) current() (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, rpc.ErrClientClosed
	}
	if e.cl != nil {
		return e.cl, nil
	}
	cl, err := rpc.Dial(e.dialer, e.addr)
	if err != nil {
		return nil, err
	}
	cl.SetLink(e.link)
	e.cl = cl
	return cl, nil
}

// retire discards cl if it is still the active generation, folding its
// counters into the endpoint's running totals.
func (e *endpoint) retire(cl *rpc.Client) {
	e.mu.Lock()
	if e.cl == cl {
		e.baseTrips += cl.Trips()
		e.baseVirt += cl.VirtualTime()
		e.cl = nil
		cl.Close()
	}
	e.mu.Unlock()
}

// Call issues one untraced request; see CallT.
func (e *endpoint) Call(op wire.Op, body []byte) (wire.Status, []byte, error) {
	return e.CallT(0, op, body)
}

// CallT issues one request stamped with trace, retrying exactly once
// through a fresh connection on transport failure. The wall-clock round
// trip is recorded in the client's per-op telemetry, and calls slower than
// the configured threshold are logged with the trace ID and server address
// so they can be matched against server-side slow-request logs.
func (e *endpoint) CallT(trace uint64, op wire.Op, body []byte) (wire.Status, []byte, error) {
	t0 := time.Now()
	st, resp, err := e.callOnce(trace, op, body)
	rtt := time.Since(t0)
	m := e.telem.forOp(op)
	m.calls.Inc()
	m.rtt.Record(rtt)
	if e.telem.slow > 0 && rtt >= e.telem.slow {
		log.Printf("client: slow call trace=%#x op=%s addr=%s rtt=%v status=%s err=%v",
			trace, op, e.addr, rtt, st, err)
	}
	return st, resp, err
}

func (e *endpoint) callOnce(trace uint64, op wire.Op, body []byte) (wire.Status, []byte, error) {
	cl, err := e.current()
	if err != nil {
		return wire.StatusIO, nil, err
	}
	st, resp, callErr := cl.CallTraced(op, body, trace)
	if callErr == nil {
		return st, resp, nil
	}
	e.retire(cl)
	cl, err = e.current()
	if err != nil {
		return wire.StatusIO, nil, callErr
	}
	return cl.CallTraced(op, body, trace)
}

// Trips returns cumulative round trips across all generations.
func (e *endpoint) Trips() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.baseTrips
	if e.cl != nil {
		n += e.cl.Trips()
	}
	return n
}

// VirtualTime returns cumulative modeled time across all generations.
func (e *endpoint) VirtualTime() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.baseVirt
	if e.cl != nil {
		d += e.cl.VirtualTime()
	}
	return d
}

// Close tears the endpoint down permanently.
func (e *endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	if e.cl != nil {
		e.cl.Close()
		e.cl = nil
	}
	return nil
}
