package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestTopKRanksSkewFirst(t *testing.T) {
	// A Zipf-ish skew over far more distinct keys than the sketch monitors:
	// the heavy hitter must rank first despite constant churn.
	tk := NewTopK(16)
	for i := 0; i < 2000; i++ {
		tk.Touch("/hot")
		tk.Touch(fmt.Sprintf("/cold/%d", i))
		if i%3 == 0 {
			tk.Touch("/warm")
		}
	}
	top := tk.Top(2)
	if len(top) < 2 {
		t.Fatalf("Top(2) = %v", top)
	}
	if top[0].Key != "/hot" {
		t.Fatalf("top key = %q, want /hot (top=%v)", top[0].Key, top)
	}
	if top[1].Key != "/warm" {
		t.Errorf("second key = %q, want /warm", top[1].Key)
	}
	// Space-saving overestimates by at most Err; the true count is 2000.
	if got := top[0].Count - top[0].Err; got > 2000 {
		t.Errorf("lower bound %d exceeds true count 2000", got)
	}
	if top[0].Count < 2000 {
		t.Errorf("count %d underestimates true count 2000", top[0].Count)
	}
	if tk.Total() != uint64(2000+2000+667) {
		t.Errorf("Total = %d, want 4667", tk.Total())
	}
}

func TestTopKCapacityAndReset(t *testing.T) {
	tk := NewTopK(4)
	for i := 0; i < 100; i++ {
		tk.Touch(fmt.Sprintf("k%d", i))
	}
	if got := len(tk.Top(0)); got != 4 {
		t.Errorf("monitored %d keys, want 4", got)
	}
	tk.Reset()
	if len(tk.Top(0)) != 0 || tk.Total() != 0 {
		t.Error("Reset did not clear the sketch")
	}
	if NewTopK(0).cap != DefaultTopKCapacity {
		t.Error("NewTopK(0) did not apply the default capacity")
	}
}

func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tk.Touch("/shared")
				tk.Touch(fmt.Sprintf("/g%d/%d", g, i%50))
			}
		}(g)
	}
	wg.Wait()
	if top := tk.Top(1); top[0].Key != "/shared" {
		t.Errorf("top = %v, want /shared", top)
	}
	if tk.Total() != 16000 {
		t.Errorf("Total = %d, want 16000", tk.Total())
	}
}
