package bench

import (
	"fmt"
	"time"

	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/mdtest"
)

// shardClients is the fixed workload width of the sharding sweep: the same
// 8 mdtest clients run against 1, 2 and 4 partitions, so any throughput
// difference comes from spreading the directory namespace over more DMS
// leaders, not from offering more load.
const shardClients = 8

// FigDMSShard measures DMS namespace sharding (DESIGN.md §16; beyond the
// paper, whose DMS is a single server). The mdtest directory mix runs with
// a fixed client count against 1, 2 and 4 partitions (2 replicas each),
// with each client's private subtree cut onto partition clientIndex mod P.
// Reported is the DMS capacity bound — phase ops over the busiest
// partition's accumulated service time (as in Table 3's capacity column) —
// which is what sharding moves: cutting the namespace over P leaders
// divides the busiest server's work by ~P. The second section prices the
// explicit two-partition commit: for a directory rename (one subdirectory,
// one file) staying inside a partition versus crossing the cut, the mean
// client-visible modeled latency and the mean DMS service time summed over
// every replica — the latter is where the commit's extra log entries,
// destination-side apply and replication show up.
func FigDMSShard(env Env) (*Table, error) {
	tbl := &Table{
		Title: "dmsshard: DMS partition scaling and cross-partition rename cost",
		Note: "mdtest mix, " + fmt.Sprint(shardClients) + " clients, 2 replicas/partition; kIOPS is the DMS\n" +
			"capacity bound (busiest partition), as in Table 3's capacity column.\n" +
			"rename rows, per directory rename (dir + 1 file): client-visible modeled\n" +
			"latency, and DMS service time summed over all replicas (the cost of the\n" +
			"two-partition commit's extra log entries and replication).",
		Headers: []string{"workload", "partitions", "mkdir", "dir-stat", "readdir", "rmdir", "rename-lat", "rename-dms-cost"},
	}
	phases := []string{mdtest.PhaseMkdir, mdtest.PhaseDirStat, mdtest.PhaseReaddir, mdtest.PhaseRmdir}
	for _, parts := range []int{1, 2, 4} {
		ach, err := shardMdtest(env, parts, phases)
		if err != nil {
			return nil, err
		}
		tbl.AddRow("mdtest", fmt.Sprint(parts),
			fmtKIOPS(ach[mdtest.PhaseMkdir]), fmtKIOPS(ach[mdtest.PhaseDirStat]),
			fmtKIOPS(ach[mdtest.PhaseReaddir]), fmtKIOPS(ach[mdtest.PhaseRmdir]), "", "")
	}

	same, cross, err := shardRenameCost(env)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("rename same-partition", "2", "", "", "", "", fmtUS(same.lat), fmtUS(same.dms))
	tbl.AddRow("rename cross-partition", "2", "", "", "", "", fmtUS(cross.lat), fmtUS(cross.dms))
	return tbl, nil
}

// shardMdtest runs the mdtest directory mix on a parts-partition cluster
// and returns the DMS capacity bound per phase: phase ops over the busiest
// partition's accumulated service time (per-server parallelism factored
// out as in throughputs).
func shardMdtest(env Env, parts int, phases []string) (Throughputs, error) {
	// Cut each client's private mdtest subtree /mdtest/c<j> onto partition
	// j mod parts. core assigns cut i to partition (i mod parts-1)+1, so
	// the cuts are listed in partition-cycling order; clients with
	// j mod parts == 0 keep the residual partition 0.
	var cuts []string
	for k := 0; k*parts < shardClients; k++ {
		for rem := 1; rem < parts; rem++ {
			cuts = append(cuts, fmt.Sprintf("/mdtest/c%d", k*parts+rem))
		}
	}
	cluster, err := core.Start(core.Options{
		DMSPartitions: parts,
		DMSCuts:       cuts,
		DMSReplicas:   2,
		Link:          env.Link,
		CostModel:     &core.PaperKVCost,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	var prevBusy []time.Duration
	busyDelta := make(map[string]time.Duration, len(phases))
	rep, err := mdtest.Run(mdtest.Config{
		Clients:        shardClients,
		ItemsPerClient: env.TputItems,
		Depth:          1,
		Phases:         phases,
		SetupHook:      func() { prevBusy = cluster.DMSBusy() },
		PhaseHook: func(phase string) {
			cur := cluster.DMSBusy()
			var max time.Duration
			for i := range cur {
				d := cur[i]
				if i < len(prevBusy) {
					d -= prevBusy[i]
				}
				if d > max {
					max = d
				}
			}
			prevBusy = cur
			busyDelta[phase] = max
		},
	}, func() (fsapi.FS, error) {
		cl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			return nil, err
		}
		return fsapi.LocoFS{C: cl}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: dmsshard %d-partition run: %w", parts, err)
	}
	cap := make(Throughputs, len(rep.Results))
	for _, pr := range rep.Results {
		if pr.Errors > 0 {
			return nil, fmt.Errorf("bench: dmsshard %d-partition phase %s had %d errors", parts, pr.Phase, pr.Errors)
		}
		if sb := busyDelta[pr.Phase] / locoWorkers; sb > 0 {
			cap[pr.Phase] = float64(pr.Ops) / sb.Seconds()
		}
	}
	return cap, nil
}

// renameCost is the per-rename price from one batch of directory renames:
// the mean client-visible modeled latency, and the mean DMS service time
// summed over every replica of every partition.
type renameCost struct {
	lat time.Duration
	dms time.Duration
}

// shardRenameCost measures a directory rename within one partition versus
// across the cut (the two-partition commit: prepare at the destination
// group, commit markers on both op logs).
func shardRenameCost(env Env) (same, cross renameCost, err error) {
	cluster, err := core.Start(core.Options{
		DMSPartitions: 2,
		DMSCuts:       []string{"/far"},
		DMSReplicas:   2,
		Link:          env.Link,
		CostModel:     &core.PaperKVCost,
	})
	if err != nil {
		return same, cross, err
	}
	defer cluster.Close()
	// The cache would absorb part of the rename's lookup work; disable it
	// so both rows price the same full server path.
	cl, err := cluster.NewClient(core.ClientConfig{DisableCache: true})
	if err != nil {
		return same, cross, err
	}
	defer cl.Close()

	n := env.TputItems
	if n < 20 {
		n = 20
	}
	if err := cl.Mkdir("/near", 0o755); err != nil {
		return same, cross, err
	}
	if err := cl.Mkdir("/far", 0o755); err != nil {
		return same, cross, err
	}
	for i := 0; i < 2*n; i++ {
		d := fmt.Sprintf("/near/d%04d", i)
		if err := cl.Mkdir(d, 0o755); err != nil {
			return same, cross, err
		}
		if err := cl.Create(d+"/f", 0o644); err != nil {
			return same, cross, err
		}
	}

	dmsTotal := func() time.Duration {
		var sum time.Duration
		for _, b := range cluster.DMSBusy() {
			sum += b
		}
		return sum
	}
	renameBatch := func(from, to string, lo, hi int) (renameCost, error) {
		startLat, startDMS := cl.Cost(), dmsTotal()
		for i := lo; i < hi; i++ {
			if _, err := cl.RenameDir(fmt.Sprintf("%s/d%04d", from, i), fmt.Sprintf("%s/r%04d", to, i)); err != nil {
				return renameCost{}, fmt.Errorf("bench: dmsshard rename %s->%s #%d: %w", from, to, i, err)
			}
		}
		ops := time.Duration(hi - lo)
		return renameCost{
			lat: (cl.Cost() - startLat) / ops,
			dms: (dmsTotal() - startDMS) / ops,
		}, nil
	}
	if same, err = renameBatch("/near", "/near", 0, n); err != nil {
		return same, cross, err
	}
	if cross, err = renameBatch("/near", "/far", n, 2*n); err != nil {
		return same, cross, err
	}
	return same, cross, nil
}
