package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"locofs/internal/core"
	"locofs/internal/trace"
)

// Spans runs a mixed metadata workload with full tracing (sample = 1.0, the
// cluster and the client sharing one span ring) and reports the span-tree
// breakdown per operation class: for every distinct root-to-span path —
// e.g. Readdir > page > rpc:Batch > Batch > ReaddirFiles — the number of
// spans recorded and their mean wall-clock duration. It is the aggregate
// view of what /debug/traces serves one trace at a time, and shows where
// each op class spends its time across the client, the DMS, and the FMSes.
func Spans(env Env) (*Table, error) {
	tracer := trace.New(trace.Config{Sample: 1, BufSpans: 1 << 16, Slow: -1})
	cluster, err := core.Start(core.Options{FMSCount: 4, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// Cache disabled so lookups reach the DMS and show up in the trees.
	cl, err := cluster.NewClient(core.ClientConfig{DisableCache: true, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	n := env.LatItems
	if n > 200 {
		n = 200 // full tracing: bound the ring churn, the shape converges fast
	}
	if err := cl.Mkdir("/spans", 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("/spans/d%d", i)
		f := fmt.Sprintf("/spans/f%d", i)
		steps := []func() error{
			func() error { return cl.Mkdir(d, 0o755) },
			func() error { _, err := cl.StatDir(d); return err },
			func() error { return cl.Create(f, 0o644) },
			func() error { _, err := cl.StatFile(f); return err },
			func() error { _, err := cl.Readdir("/spans"); return err },
			func() error { return cl.Remove(f) },
			func() error { return cl.Rmdir(d) },
		}
		for _, step := range steps {
			if err := step(); err != nil {
				return nil, fmt.Errorf("bench: spans workload: %w", err)
			}
		}
	}
	return SpanBreakdown(tracer.Spans(),
		"Span-tree breakdown per op class (LocoFS, fully traced)",
		fmt.Sprintf("%d iterations; every span of every trace recorded (sample=1.0), client and servers sharing one ring.", n)), nil
}

// SpanBreakdown aggregates raw spans into per-path rows: spans are keyed by
// their root-to-leaf name path (annotated with the recording server), and
// each distinct path reports its span count and mean duration, grouped
// under its root op class.
func SpanBreakdown(spans []*trace.Span, title, note string) *Table {
	byID := make(map[uint64]*trace.Span, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	type agg struct {
		count uint64
		total time.Duration
	}
	paths := make(map[string]*agg)
	for _, sp := range spans {
		// Render the root-to-sp name chain; an unresolvable parent (its span
		// fell off the ring, or it lives in another process) renders as "?".
		var names []string
		for cur := sp; cur != nil; {
			label := cur.Name
			if cur.Server != "" && cur.Server != "client" {
				label += "@" + cur.Server
			}
			names = append(names, label)
			if cur.Parent == 0 {
				break
			}
			parent := byID[cur.Parent]
			if parent == nil {
				names = append(names, "?")
			}
			cur = parent
		}
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
		p := strings.Join(names, " > ")
		a := paths[p]
		if a == nil {
			a = &agg{}
			paths[p] = a
		}
		a.count++
		a.total += sp.Dur
	}
	keys := make([]string, 0, len(paths))
	for p := range paths {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	t := &Table{
		Title:   title,
		Note:    note,
		Headers: []string{"span path", "count", "mean"},
	}
	for _, p := range keys {
		a := paths[p]
		t.AddRow(p, fmt.Sprintf("%d", a.count),
			fmtUS(a.total/time.Duration(a.count)))
	}
	return t
}
