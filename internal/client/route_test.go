package client

import (
	"errors"
	"sync"
	"testing"
	"time"

	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// TestRefreshPartMapSingleFlight: concurrent refresh calls — the shape a
// failover produces, when every in-flight request trips EWRONGPART or a
// dead leader at once — coalesce into one fetch. Callers that queued
// behind the running fetch return without issuing their own, counted by
// the suppressed-fetch metric.
func TestRefreshPartMapSingleFlight(t *testing.T) {
	var (
		dialMu sync.Mutex
		dials  int
	)
	gate := make(chan struct{})
	c := &Client{
		telem:  &clientTelem{reg: telemetry.NewRegistry()},
		dmsEps: map[string]*endpoint{},
		dialDMSPart: func(addr string, pid uint32) (*endpoint, error) {
			dialMu.Lock()
			dials++
			dialMu.Unlock()
			<-gate
			return nil, errors.New("test dialer: no fabric")
		},
	}
	c.pmap.Store(&wire.PartMap{Ver: 1, Groups: [][]string{{"p0-l"}}})

	inFetch := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(inFetch)
		c.refreshPartMap(opCtx{}, "") // the one real fetch, held at the gate
	}()
	<-inFetch
	time.Sleep(20 * time.Millisecond) // let the leader goroutine reach the gate

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- c.refreshPartMap(opCtx{}, "")
		}()
	}
	// Give the followers time to read the generation and queue on the lock,
	// then release the fetch.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Errorf("suppressed refresh returned %v, want nil (reuse the completed fetch)", err)
		}
	}
	if dials != 1 {
		t.Errorf("dial attempts = %d, want 1 (followers must not fetch again)", dials)
	}
	if got := c.telem.reg.Counter(MetricPMapSuppressed).Load(); got != 2 {
		t.Errorf("suppressed counter = %d, want 2", got)
	}
}
