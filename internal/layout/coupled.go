package layout

import (
	"encoding/binary"
	"errors"

	"locofs/internal/uuid"
)

// CoupledInode is a conventional, *coupled* file inode: every field —
// access fields, content fields, and the variable-length data-block index —
// lives in one value that must be deserialized in full before any field can
// be read and re-serialized in full after any field changes.
//
// This is the organization the paper attributes to IndexFS-style systems
// (§2.2.2, §3.3) and is what the LocoFS-CF ablation and the IndexFS baseline
// store. Its costs are real in this implementation: Encode allocates and
// copies the whole record, Decode parses every field, and the block index
// grows with file size.
type CoupledInode struct {
	CTime     int64
	MTime     int64
	ATime     int64
	Mode      uint32
	UID       uint32
	GID       uint32
	Size      uint64
	BlockSize uint32
	UUID      uuid.UUID
	// Blocks is the forward data-block index (object IDs per block) that
	// the decoupled design eliminates via uuid+blk_num addressing.
	Blocks []uint64
}

// ErrCorruptInode reports a malformed encoded coupled inode.
var ErrCorruptInode = errors.New("layout: corrupt coupled inode")

// coupledMagic guards against decoding foreign values.
const coupledMagic = 0xC0

// coupledReserved is the fixed reserved region of a coupled inode value:
// conventional inode records carry name/link/xattr space and stat padding
// (the paper: "a file metadata object consumes hundreds of bytes", §3.3).
const coupledReserved = 200

// Encode serializes the inode into a fresh value string. Variable-length
// fields (the block index) are length-prefixed, which is exactly what forces
// a full parsing pass on read, and a reserved region pads the record to the
// conventional several-hundred-byte inode size.
func (ci *CoupledInode) Encode() []byte {
	buf := make([]byte, 0, 64+coupledReserved+8*len(ci.Blocks))
	buf = append(buf, coupledMagic)
	buf = append(buf, make([]byte, coupledReserved)...)
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putU(uint64(ci.CTime))
	putU(uint64(ci.MTime))
	putU(uint64(ci.ATime))
	putU(uint64(ci.Mode))
	putU(uint64(ci.UID))
	putU(uint64(ci.GID))
	putU(ci.Size)
	putU(uint64(ci.BlockSize))
	buf = append(buf, ci.UUID[:]...)
	putU(uint64(len(ci.Blocks)))
	for _, b := range ci.Blocks {
		putU(b)
	}
	return buf
}

// DecodeCoupledInode parses a value produced by Encode.
func DecodeCoupledInode(value []byte) (*CoupledInode, error) {
	if len(value) < 1+coupledReserved || value[0] != coupledMagic {
		return nil, ErrCorruptInode
	}
	value = value[1+coupledReserved:]
	getU := func() (uint64, bool) {
		v, n := binary.Uvarint(value)
		if n <= 0 {
			return 0, false
		}
		value = value[n:]
		return v, true
	}
	var ci CoupledInode
	fields := []*uint64{}
	var ct, mt, at, mode, uid, gid, size, bsz uint64
	for _, p := range append(fields, &ct, &mt, &at, &mode, &uid, &gid, &size, &bsz) {
		v, ok := getU()
		if !ok {
			return nil, ErrCorruptInode
		}
		*p = v
	}
	ci.CTime, ci.MTime, ci.ATime = int64(ct), int64(mt), int64(at)
	ci.Mode, ci.UID, ci.GID = uint32(mode), uint32(uid), uint32(gid)
	ci.Size, ci.BlockSize = size, uint32(bsz)
	if len(value) < uuid.Size {
		return nil, ErrCorruptInode
	}
	ci.UUID = uuid.MustFromBytes(value[:uuid.Size])
	value = value[uuid.Size:]
	nblk, ok := getU()
	if !ok {
		return nil, ErrCorruptInode
	}
	if nblk > uint64(len(value)) { // each block takes >= 1 byte
		return nil, ErrCorruptInode
	}
	ci.Blocks = make([]uint64, 0, nblk)
	for i := uint64(0); i < nblk; i++ {
		b, ok := getU()
		if !ok {
			return nil, ErrCorruptInode
		}
		ci.Blocks = append(ci.Blocks, b)
	}
	if len(value) != 0 {
		return nil, ErrCorruptInode
	}
	return &ci, nil
}

// SplitCoupled converts a coupled inode into the two decoupled parts,
// dropping the forward block index (which the decoupled design replaces with
// uuid+blk_num addressing).
func SplitCoupled(ci *CoupledInode) (FileAccess, FileContent) {
	a := NewFileAccess()
	a.SetCTime(ci.CTime)
	a.SetMode(ci.Mode)
	a.SetUID(ci.UID)
	a.SetGID(ci.GID)
	c := NewFileContent(ci.BlockSize)
	c.SetMTime(ci.MTime)
	c.SetATime(ci.ATime)
	c.SetSize(ci.Size)
	c.SetUUID(ci.UUID)
	return a, c
}

// JoinParts builds a coupled inode from decoupled parts (no block index).
func JoinParts(a FileAccess, c FileContent) *CoupledInode {
	return &CoupledInode{
		CTime:     a.CTime(),
		MTime:     c.MTime(),
		ATime:     c.ATime(),
		Mode:      a.Mode(),
		UID:       a.UID(),
		GID:       a.GID(),
		Size:      c.Size(),
		BlockSize: c.BlockSize(),
		UUID:      c.UUID(),
	}
}
