package locofs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"locofs"
)

// TestPublicAPIInProcess exercises the public surface a downstream user
// would import: in-process cluster, client, directories, files, data.
func TestPublicAPIInProcess(t *testing.T) {
	cluster, err := locofs.Start(locofs.Options{FMSCount: 4, CheckPermissions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.NewClient(locofs.ClientConfig{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	if err := fs.Mkdir("/pub", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.Create(fmt.Sprintf("/pub/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Open("/pub/f0", true)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("public api data")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(got, data) {
		t.Error("data round trip failed")
	}
	ents, err := fs.Readdir("/pub")
	if err != nil || len(ents) != 10 {
		t.Errorf("Readdir = %d entries, %v", len(ents), err)
	}
	var a *locofs.Attr
	if a, err = fs.StatFile("/pub/f0"); err != nil || a.Size != uint64(len(data)) {
		t.Errorf("StatFile = %+v, %v", a, err)
	}
	if moved, err := fs.RenameDir("/pub", "/pub2"); err != nil || moved != 1 {
		t.Errorf("RenameDir = %d, %v", moved, err)
	}
	if _, err := fs.StatFile("/pub2/f0"); err != nil {
		t.Errorf("stat after rename: %v", err)
	}
}

// TestPublicAPIStandaloneServers wires the standalone server constructors
// over TCP, as cmd/locofsd does.
func TestPublicAPIStandaloneServers(t *testing.T) {
	start := func(attach func(*locofs.RPCServer)) string {
		l, err := locofs.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs := locofs.NewRPCServer()
		attach(rs)
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
		return l.Addr()
	}
	dmsAddr := start(locofs.NewDMS(locofs.DMSOptions{}).Attach)
	fmsAddr := start(locofs.NewFMS(locofs.FMSOptions{ServerID: 1}).Attach)
	ossAddr := start(locofs.NewObjectStore().Attach)

	fs, err := locofs.Dial(locofs.DialConfig{
		Dialer:   locofs.TCPDialer{},
		DMSAddr:  dmsAddr,
		FMSAddrs: []string{fmsAddr},
		OSSAddrs: []string{ossAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Mkdir("/tcp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/tcp/f", 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := fs.StatFile("/tcp/f")
	if err != nil {
		t.Fatal(err)
	}
	var u locofs.UUID = a.UUID
	if u.IsNil() {
		t.Error("file has nil UUID")
	}
}

// TestUnifiedStatAndKinds: Stat resolves either kind of namespace object in
// one call and reports what it found in Attr.Kind; the kind-specific
// StatDir/StatFile wrappers agree with it.
func TestUnifiedStatAndKinds(t *testing.T) {
	cluster, err := locofs.Start(locofs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.NewClient(locofs.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := fs.Stat("/d")
	if err != nil || a.Kind != locofs.KindDir || !a.IsDir {
		t.Fatalf("Stat of directory: %+v, %v", a, err)
	}
	a, err = fs.Stat("/d/f")
	if err != nil || a.Kind != locofs.KindFile || a.IsDir {
		t.Fatalf("Stat of file: %+v, %v", a, err)
	}
	if a, err = fs.StatDir("/d"); err != nil || a.Kind != locofs.KindDir {
		t.Fatalf("StatDir: %+v, %v", a, err)
	}
	if a, err = fs.StatFile("/d/f"); err != nil || a.Kind != locofs.KindFile {
		t.Fatalf("StatFile: %+v, %v", a, err)
	}
	// The kind-specific wrappers refuse the other kind.
	if _, err := fs.StatFile("/d"); err == nil {
		t.Error("StatFile accepted a directory")
	}
	if _, err := fs.StatDir("/d/f"); err == nil {
		t.Error("StatDir accepted a file")
	}
}

// TestContextVariants: every public method's *Context variant honors its
// context — cancellation stops the operation (including its retries)
// immediately, and a deadline already expired fails fast with an error in
// both the locofs and context error classes.
func TestContextVariants(t *testing.T) {
	cluster, err := locofs.Start(locofs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.NewClient(locofs.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// A live context behaves exactly like the legacy methods.
	ctx := context.Background()
	if err := fs.MkdirContext(ctx, "/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateContext(ctx, "/c/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if a, err := fs.StatContext(ctx, "/c/f"); err != nil || a.Kind != locofs.KindFile {
		t.Fatalf("StatContext: %+v, %v", a, err)
	}
	if ents, err := fs.ReaddirContext(ctx, "/"); err != nil || len(ents) != 1 {
		t.Fatalf("ReaddirContext: %d entries, %v", len(ents), err)
	}
	if f, err := fs.OpenContext(ctx, "/c/f", false); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}

	// A canceled context fails before any RPC goes out.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fs.MkdirContext(canceled, "/c/nope", 0o755); !errors.Is(err, context.Canceled) {
		t.Fatalf("MkdirContext under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := fs.StatDir("/c/nope"); !errors.Is(err, locofs.ErrNotFound) {
		t.Fatalf("canceled mkdir still created the directory: %v", err)
	}

	// An expired deadline maps into both error vocabularies.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	_, err = fs.StatContext(expired, "/c/f")
	if !errors.Is(err, locofs.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StatContext under expired deadline: %v, want ErrDeadlineExceeded/context.DeadlineExceeded", err)
	}
}
