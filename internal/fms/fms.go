// Package fms implements the LocoFS File Metadata Server.
//
// Each FMS owns the file inodes that the consistent-hash ring assigns to it,
// keyed by directory_uuid + file_name (§3.1). In the default *decoupled*
// mode (§3.3), a file's metadata is two small fixed-length values — the
// access part and the content part — and single-field updates are in-place
// byte patches with no (de)serialization. The *coupled* mode (the LocoFS-CF
// ablation of Fig 11 and the organization of IndexFS-style systems) stores
// one variable-length value per file, including a forward block index, and
// every update is a full get → decode → modify → encode → put cycle.
//
// The dirents of all files of one directory that land on this server are
// concatenated into a single value keyed by the directory UUID (§3.2.1).
package fms

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/acl"
	"locofs/internal/flight"
	"locofs/internal/kv"
	"locofs/internal/layout"
	"locofs/internal/rpc"
	"locofs/internal/trace"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// Key prefixes inside the FMS store.
const (
	prefixAccess  = "A:" // decoupled access part
	prefixContent = "C:" // decoupled content part
	prefixCoupled = "I:" // coupled whole-inode value
	prefixDirents = "D:" // per-directory file dirent list
)

// DefaultBlockSize is the object-store block size stamped into new files.
const DefaultBlockSize = 4096

// Options configures an FMS.
type Options struct {
	// Store is the backing KV store. Default: a fresh kv.HashStore.
	Store kv.Store
	// ServerID stamps generated file UUIDs and must be unique per FMS.
	ServerID uint32
	// Coupled selects the coupled-inode (LocoFS-CF) organization.
	Coupled bool
	// CheckPermissions enables ACL enforcement on file operations.
	CheckPermissions bool
	// BlockSize for new files; default DefaultBlockSize.
	BlockSize uint32
	// Now supplies timestamps; defaults to time.Now().UnixNano.
	Now func() int64
}

// FileMeta is the decoded metadata of one file, returned by Getattr.
type FileMeta struct {
	Access  layout.FileAccess
	Content layout.FileContent
}

// UUID returns the file's UUID.
func (m *FileMeta) UUID() uuid.UUID { return m.Content.UUID() }

// Server is one file metadata server.
type Server struct {
	mu        sync.RWMutex
	store     kv.Store
	gen       *uuid.Generator
	coupled   bool
	checkPerm bool
	blockSize uint32
	now       func() int64
	tombs     atomic.Uint64 // dirent tombstones since start, for compaction

	// hot ranks this server's most-touched file keys (dir-uuid/name for
	// per-file ops, bare dir-uuid for directory-wide ops). Always on;
	// served by the admin plane's /debug/hot.
	hot *trace.TopK

	// fl, when set, receives flight-recorder events: one KindMigration per
	// non-empty ExportMoved batch (the source side of a drain).
	fl       atomic.Pointer[flight.Journal]
	flSource atomic.Pointer[string]
}

// SetFlight installs the flight journal migration events are emitted to
// (nil disables emission); source names this server in the events.
func (s *Server) SetFlight(j *flight.Journal, source string) {
	if j == nil {
		s.fl.Store(nil)
		return
	}
	s.flSource.Store(&source)
	s.fl.Store(j)
}

// New returns an FMS.
func New(opts Options) *Server {
	st := opts.Store
	if st == nil {
		st = kv.NewHashStore()
	}
	s := &Server{
		store:     st,
		gen:       uuid.NewGenerator(opts.ServerID),
		coupled:   opts.Coupled,
		checkPerm: opts.CheckPermissions,
		blockSize: opts.BlockSize,
		now:       opts.Now,
		hot:       trace.NewTopK(trace.DefaultTopKCapacity),
	}
	if s.blockSize == 0 {
		s.blockSize = DefaultBlockSize
	}
	if s.now == nil {
		s.now = func() int64 { return time.Now().UnixNano() }
	}
	s.restoreGenerator()
	return s
}

// restoreGenerator advances the UUID sequence past every file identifier
// already in the store (after a restart on persistent state).
func (s *Server) restoreGenerator() {
	sid := s.gen.SID()
	var maxFid uint64
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) < 2 {
			return true
		}
		var u uuid.UUID
		switch string(k[:2]) {
		case prefixContent:
			if len(v) != layout.FileContentSize {
				return true
			}
			u = layout.FileContent(v).UUID()
		case prefixCoupled:
			ci, err := layout.DecodeCoupledInode(v)
			if err != nil {
				return true
			}
			u = ci.UUID
		default:
			return true
		}
		if u.SID() == sid && u.FID() > maxFid {
			maxFid = u.FID()
		}
		return true
	})
	if maxFid > 0 {
		s.gen.Restore(maxFid)
	}
}

// Coupled reports whether the server runs in coupled-inode mode.
func (s *Server) Coupled() bool { return s.coupled }

// FileKey is the paper's placement key: directory_uuid + file_name. The
// same bytes feed the consistent-hash ring and, prefixed, the local store.
func FileKey(dir uuid.UUID, name string) []byte {
	k := make([]byte, 0, uuid.Size+len(name))
	k = append(k, dir[:]...)
	return append(k, name...)
}

func accessKey(dir uuid.UUID, name string) []byte {
	return append([]byte(prefixAccess), FileKey(dir, name)...)
}

func contentKey(dir uuid.UUID, name string) []byte {
	return append([]byte(prefixContent), FileKey(dir, name)...)
}

func coupledKey(dir uuid.UUID, name string) []byte {
	return append([]byte(prefixCoupled), FileKey(dir, name)...)
}

func direntsKey(dir uuid.UUID) []byte {
	return append([]byte(prefixDirents), dir[:]...)
}

// exists reports whether the file is present. Caller holds s.mu.
func (s *Server) exists(dir uuid.UUID, name string) bool {
	if s.coupled {
		_, ok := s.store.Get(coupledKey(dir, name))
		return ok
	}
	_, ok := s.store.Get(accessKey(dir, name))
	return ok
}

// Create makes a new file in directory dir and returns its UUID.
func (s *Server) Create(dir uuid.UUID, name string, mode, uid, gid uint32) (uuid.UUID, wire.Status) {
	if name == "" || dir.IsNil() {
		return uuid.Nil, wire.StatusInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exists(dir, name) {
		return uuid.Nil, wire.StatusExist
	}
	u := s.gen.Next()
	now := s.now()
	if s.coupled {
		ci := &layout.CoupledInode{
			CTime: now, MTime: now, ATime: now,
			Mode: layout.ModeFile | (mode & layout.PermMask),
			UID:  uid, GID: gid,
			BlockSize: s.blockSize, UUID: u,
		}
		s.store.Put(coupledKey(dir, name), ci.Encode())
	} else {
		a := layout.NewFileAccess()
		a.SetCTime(now)
		a.SetMode(layout.ModeFile | (mode & layout.PermMask))
		a.SetUID(uid)
		a.SetGID(gid)
		c := layout.NewFileContent(s.blockSize)
		c.SetMTime(now)
		c.SetATime(now)
		c.SetUUID(u)
		s.store.Put(accessKey(dir, name), a)
		s.store.Put(contentKey(dir, name), c)
	}
	ent := layout.AppendDirent(nil, layout.Dirent{Name: name, UUID: u})
	s.store.AppendValue(direntsKey(dir), ent)
	return u, wire.StatusOK
}

// CreateWithMeta installs a file with pre-existing metadata (used to
// relocate a file during f-rename).
func (s *Server) CreateWithMeta(dir uuid.UUID, name string, meta *FileMeta) wire.Status {
	if name == "" || dir.IsNil() || !meta.Access.Valid() || !meta.Content.Valid() {
		return wire.StatusInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exists(dir, name) {
		return wire.StatusExist
	}
	if s.coupled {
		s.store.Put(coupledKey(dir, name), layout.JoinParts(meta.Access, meta.Content).Encode())
	} else {
		s.store.Put(accessKey(dir, name), meta.Access)
		s.store.Put(contentKey(dir, name), meta.Content)
	}
	ent := layout.AppendDirent(nil, layout.Dirent{Name: name, UUID: meta.UUID()})
	s.store.AppendValue(direntsKey(dir), ent)
	return wire.StatusOK
}

// getMeta loads both parts. Caller holds a read lock (or the write lock).
func (s *Server) getMeta(dir uuid.UUID, name string) (*FileMeta, wire.Status) {
	if s.coupled {
		v, ok := s.store.Get(coupledKey(dir, name))
		if !ok {
			return nil, wire.StatusNotFound
		}
		ci, err := layout.DecodeCoupledInode(v)
		if err != nil {
			return nil, wire.StatusIO
		}
		a, c := layout.SplitCoupled(ci)
		return &FileMeta{Access: a, Content: c}, wire.StatusOK
	}
	av, ok := s.store.Get(accessKey(dir, name))
	if !ok || len(av) != layout.FileAccessSize {
		return nil, wire.StatusNotFound
	}
	cv, ok := s.store.Get(contentKey(dir, name))
	if !ok || len(cv) != layout.FileContentSize {
		return nil, wire.StatusIO
	}
	return &FileMeta{Access: layout.FileAccess(av), Content: layout.FileContent(cv)}, wire.StatusOK
}

// Getattr returns both metadata parts (the stat footprint of Table 1).
func (s *Server) Getattr(dir uuid.UUID, name string) (*FileMeta, wire.Status) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getMeta(dir, name)
}

// Open checks permission against the access part and returns the metadata.
// Per Table 1 only the access part is strictly required; the content part
// rides along so the client can address data blocks.
func (s *Server) Open(dir uuid.UUID, name string, uid, gid uint32, write bool) (*FileMeta, wire.Status) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, st := s.getMeta(dir, name)
	if st != wire.StatusOK {
		return nil, st
	}
	if s.checkPerm {
		a := m.Access
		allowed := acl.CanRead(a.Mode(), a.UID(), a.GID(), uid, gid)
		if write {
			allowed = acl.CanWrite(a.Mode(), a.UID(), a.GID(), uid, gid)
		}
		if !allowed {
			return nil, wire.StatusPerm
		}
	}
	return m, wire.StatusOK
}

// Access performs the access(2) check: it reads only the access part.
func (s *Server) Access(dir uuid.UUID, name string, uid, gid uint32, wantWrite bool) wire.Status {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.coupled {
		m, st := s.getMeta(dir, name)
		if st != wire.StatusOK {
			return st
		}
		return s.aclStatus(m.Access, uid, gid, wantWrite)
	}
	av, ok := s.store.Get(accessKey(dir, name))
	if !ok {
		return wire.StatusNotFound
	}
	return s.aclStatus(layout.FileAccess(av), uid, gid, wantWrite)
}

func (s *Server) aclStatus(a layout.FileAccess, uid, gid uint32, wantWrite bool) wire.Status {
	if !s.checkPerm {
		return wire.StatusOK
	}
	ok := acl.CanRead(a.Mode(), a.UID(), a.GID(), uid, gid)
	if wantWrite {
		ok = acl.CanWrite(a.Mode(), a.UID(), a.GID(), uid, gid)
	}
	if !ok {
		return wire.StatusPerm
	}
	return wire.StatusOK
}

// Remove deletes the file and returns its UUID so the caller can reclaim
// data blocks from the object store.
func (s *Server) Remove(dir uuid.UUID, name string, uid, gid uint32) (uuid.UUID, wire.Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, st := s.getMeta(dir, name)
	if st != wire.StatusOK {
		return uuid.Nil, st
	}
	u := m.UUID()
	if s.coupled {
		s.store.Delete(coupledKey(dir, name))
	} else {
		s.store.Delete(accessKey(dir, name))
		s.store.Delete(contentKey(dir, name))
	}
	s.removeDirent(dir, name)
	return u, wire.StatusOK
}

// removeDirent logs a tombstone for name — O(appended bytes), independent
// of directory width. Every compactEvery removals the list is rewritten to
// drop dead records, amortizing garbage collection.
func (s *Server) removeDirent(dir uuid.UUID, name string) {
	key := direntsKey(dir)
	s.store.AppendValue(key, layout.AppendDirentTombstone(nil, name))
	if s.tombs.Add(1)%compactEvery == 0 {
		s.compactDirents(key)
	}
}

// compactEvery bounds tombstone garbage: one compaction per this many
// removals server-wide.
const compactEvery = 64

func (s *Server) compactDirents(key []byte) {
	list, ok := s.store.Get(key)
	if !ok {
		return
	}
	out, live, err := layout.CompactDirents(list)
	if err != nil {
		return
	}
	if live == 0 {
		s.store.Delete(key)
		return
	}
	s.store.Put(key, out)
}

// Chmod updates mode and ctime. Decoupled: a 12-byte in-place patch of the
// access part. Coupled: full value read-modify-write.
func (s *Server) Chmod(dir uuid.UUID, name string, mode, uid uint32) wire.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coupled {
		return s.rmwCoupled(dir, name, func(ci *layout.CoupledInode) wire.Status {
			if s.checkPerm && !acl.IsOwner(ci.UID, uid) {
				return wire.StatusPerm
			}
			ci.Mode = layout.ModeFile | (mode & layout.PermMask)
			ci.CTime = s.now()
			return wire.StatusOK
		})
	}
	key := accessKey(dir, name)
	if s.checkPerm {
		av, ok := s.store.Get(key)
		if !ok {
			return wire.StatusNotFound
		}
		if !acl.IsOwner(layout.FileAccess(av).UID(), uid) {
			return wire.StatusPerm
		}
	}
	newMode := layout.ModeFile | (mode & layout.PermMask)
	for _, p := range layout.PatchAccessMode(newMode, s.now()) {
		if !s.store.PatchInPlace(key, p.Off, p.Data) {
			return wire.StatusNotFound
		}
	}
	return wire.StatusOK
}

// Chown updates owner fields (root only when permission checks are on).
func (s *Server) Chown(dir uuid.UUID, name string, newUID, newGID, uid uint32) wire.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.checkPerm && uid != 0 {
		return wire.StatusPerm
	}
	if s.coupled {
		return s.rmwCoupled(dir, name, func(ci *layout.CoupledInode) wire.Status {
			ci.UID, ci.GID, ci.CTime = newUID, newGID, s.now()
			return wire.StatusOK
		})
	}
	key := accessKey(dir, name)
	for _, p := range layout.PatchAccessOwner(newUID, newGID, s.now()) {
		if !s.store.PatchInPlace(key, p.Off, p.Data) {
			return wire.StatusNotFound
		}
	}
	return wire.StatusOK
}

// Utimens updates atime and mtime (content part only).
func (s *Server) Utimens(dir uuid.UUID, name string, atime, mtime int64) wire.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coupled {
		return s.rmwCoupled(dir, name, func(ci *layout.CoupledInode) wire.Status {
			ci.ATime, ci.MTime = atime, mtime
			return wire.StatusOK
		})
	}
	key := contentKey(dir, name)
	for _, p := range layout.PatchContentTimes(atime, mtime) {
		if !s.store.PatchInPlace(key, p.Off, p.Data) {
			return wire.StatusNotFound
		}
	}
	return wire.StatusOK
}

// Truncate sets the file size, returning the file UUID, previous size, and
// block size so the caller can trim object-store blocks.
func (s *Server) Truncate(dir uuid.UUID, name string, size uint64) (uuid.UUID, uint64, uint32, wire.Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coupled {
		var u uuid.UUID
		var old uint64
		var bs uint32
		st := s.rmwCoupled(dir, name, func(ci *layout.CoupledInode) wire.Status {
			u, old, bs = ci.UUID, ci.Size, ci.BlockSize
			ci.Size = size
			ci.MTime = s.now()
			ci.Blocks = resizeBlockIndex(ci.Blocks, size, ci.BlockSize)
			return wire.StatusOK
		})
		return u, old, bs, st
	}
	// Decoupled truncate touches only the content part (Table 1).
	key := contentKey(dir, name)
	cv, ok := s.store.Get(key)
	if !ok || len(cv) != layout.FileContentSize {
		return uuid.Nil, 0, 0, wire.StatusNotFound
	}
	content := layout.FileContent(cv)
	old := content.Size()
	for _, p := range layout.PatchContentSize(size, s.now()) {
		if !s.store.PatchInPlace(key, p.Off, p.Data) {
			return uuid.Nil, 0, 0, wire.StatusIO
		}
	}
	return content.UUID(), old, content.BlockSize(), wire.StatusOK
}

// UpdateSize extends the file size after a data write (size only grows; a
// concurrent larger write wins). Decoupled cost: one 8-byte in-place read
// plus a 16-byte patch.
func (s *Server) UpdateSize(dir uuid.UUID, name string, size uint64) wire.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coupled {
		return s.rmwCoupled(dir, name, func(ci *layout.CoupledInode) wire.Status {
			if size > ci.Size {
				ci.Size = size
				ci.Blocks = resizeBlockIndex(ci.Blocks, size, ci.BlockSize)
			}
			ci.MTime = s.now()
			return wire.StatusOK
		})
	}
	key := contentKey(dir, name)
	var cur [8]byte
	if !s.store.ReadAt(key, layout.OffContentSize, cur[:]) {
		return wire.StatusNotFound
	}
	curSize := binary.LittleEndian.Uint64(cur[:])
	newSize := curSize
	if size > curSize {
		newSize = size
	}
	for _, p := range layout.PatchContentSize(newSize, s.now()) {
		if !s.store.PatchInPlace(key, p.Off, p.Data) {
			return wire.StatusIO
		}
	}
	return wire.StatusOK
}

// resizeBlockIndex grows/shrinks the coupled inode's forward block index to
// cover size bytes (capped to bound memory; the cap loses no information
// the decoupled design needs, since block addresses are uuid+blk_num).
func resizeBlockIndex(blocks []uint64, size uint64, bsize uint32) []uint64 {
	if bsize == 0 {
		return blocks
	}
	want := int((size + uint64(bsize) - 1) / uint64(bsize))
	const maxIndex = 4096
	if want > maxIndex {
		want = maxIndex
	}
	for len(blocks) < want {
		blocks = append(blocks, uint64(len(blocks)))
	}
	return blocks[:want]
}

// rmwCoupled is the coupled-mode read-modify-write cycle every mutation
// pays: get, decode, mutate, encode, put. Caller holds s.mu.
func (s *Server) rmwCoupled(dir uuid.UUID, name string, fn func(*layout.CoupledInode) wire.Status) wire.Status {
	key := coupledKey(dir, name)
	v, ok := s.store.Get(key)
	if !ok {
		return wire.StatusNotFound
	}
	ci, err := layout.DecodeCoupledInode(v)
	if err != nil {
		return wire.StatusIO
	}
	if st := fn(ci); st != wire.StatusOK {
		return st
	}
	s.store.Put(key, ci.Encode())
	return wire.StatusOK
}

// ReaddirFiles returns one page of dir's file entries stored on this
// server, in name order, strictly after cursor (empty = from the start).
// The client unions pages from every FMS. more reports remaining entries.
func (s *Server) ReaddirFiles(dir uuid.UUID, cursor string, limit int) (ents []layout.Dirent, more bool, st wire.Status) {
	ents, remaining, st := s.ReaddirFilesAt(dir, cursor, 0, limit)
	return ents, remaining > 0, st
}

// ReaddirFilesAt is ReaddirFiles with a page offset: it returns the skip-th
// page after cursor, letting a client prefetch several consecutive pages of
// one listing in a single batched round trip. remaining is the exact entry
// count beyond the returned page.
func (s *Server) ReaddirFilesAt(dir uuid.UUID, cursor string, skip, limit int) (ents []layout.Dirent, remaining int, st wire.Status) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	list, _ := s.store.Get(direntsKey(dir))
	ents, remaining, err := layout.DirentPageAt(list, cursor, skip, limit)
	if err != nil {
		return nil, 0, wire.StatusIO
	}
	return ents, remaining, wire.StatusOK
}

// DirHasFiles reports whether this server holds any file of dir — the
// per-server emptiness probe rmdir fans out (§4.2.1 observation 3).
func (s *Server) DirHasFiles(dir uuid.UUID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	list, ok := s.store.Get(direntsKey(dir))
	if !ok {
		return false
	}
	n, err := layout.CountDirents(list)
	return err == nil && n > 0
}

// RemoveDirFiles deletes every file of dir on this server, returning the
// removed files' UUIDs for object-store cleanup.
func (s *Server) RemoveDirFiles(dir uuid.UUID) []uuid.UUID {
	s.mu.Lock()
	defer s.mu.Unlock()
	list, ok := s.store.Get(direntsKey(dir))
	if !ok {
		return nil
	}
	ents, err := layout.DecodeDirents(list)
	if err != nil {
		return nil
	}
	out := make([]uuid.UUID, 0, len(ents))
	for _, e := range ents {
		if s.coupled {
			s.store.Delete(coupledKey(dir, e.Name))
		} else {
			s.store.Delete(accessKey(dir, e.Name))
			s.store.Delete(contentKey(dir, e.Name))
		}
		out = append(out, e.UUID)
	}
	s.store.Delete(direntsKey(dir))
	return out
}

// FileCount returns the number of files on this server (tests/experiments).
func (s *Server) FileCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pfx := prefixAccess
	if s.coupled {
		pfx = prefixCoupled
	}
	n := 0
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) >= 2 && string(k[:2]) == pfx {
			n++
		}
		return true
	})
	return n
}

// HotKeys returns the server's hot-key sketch: the top-K dir-uuid/name (or
// bare dir-uuid) keys its RPC handlers touch, ranked by touch count.
func (s *Server) HotKeys() *trace.TopK { return s.hot }

// touchFile feeds one per-file operation's placement key into the sketch.
func (s *Server) touchFile(dir uuid.UUID, name string) {
	s.hot.Touch(dir.String() + "/" + name)
}

// Attach registers the FMS request handlers on an rpc.Server. Per-file
// handlers feed the file's placement key (dir-uuid/name) into the hot-key
// sketch; directory-wide handlers feed the bare dir-uuid.
func (s *Server) Attach(rs *rpc.Server) {
	rs.Handle(wire.OpCreateFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		mode, uid, gid := d.U32(), d.U32(), d.U32()
		withMeta := d.Bool()
		if d.Err() == nil {
			s.touchFile(dir, name)
			// Ownership guard: when a membership is installed and the
			// current ring places this key elsewhere, refuse the create
			// with ESTALE so a client on an old ring refreshes and
			// retries at the right owner instead of stranding the file
			// here. Static topologies (no membership) skip the check.
			if owns, known := rs.OwnsKey(FileKey(dir, name)); known && !owns {
				return wire.StatusStale, nil
			}
		}
		if withMeta {
			access, content := d.Blob(), d.Blob()
			if d.Err() != nil {
				return wire.StatusInval, nil
			}
			meta := &FileMeta{Access: layout.FileAccess(access), Content: layout.FileContent(content)}
			return s.CreateWithMeta(dir, name, meta), nil
		}
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		u, st := s.Create(dir, name, mode, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().UUID(u).Bytes()
	})
	rs.Handle(wire.OpStatFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		m, st := s.Getattr(dir, name)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().Blob(m.Access).Blob(m.Content).Bytes()
	})
	rs.Handle(wire.OpOpenFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		uid, gid, write := d.U32(), d.U32(), d.Bool()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		m, st := s.Open(dir, name, uid, gid, write)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().Blob(m.Access).Blob(m.Content).Bytes()
	})
	rs.Handle(wire.OpAccessFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		uid, gid, write := d.U32(), d.U32(), d.Bool()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		return s.Access(dir, name, uid, gid, write), nil
	})
	rs.Handle(wire.OpRemoveFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		uid, gid := d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		u, st := s.Remove(dir, name, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().UUID(u).Bytes()
	})
	rs.Handle(wire.OpChmodFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		mode, uid := d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		return s.Chmod(dir, name, mode, uid), nil
	})
	rs.Handle(wire.OpChownFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		newUID, newGID, uid := d.U32(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		return s.Chown(dir, name, newUID, newGID, uid), nil
	})
	rs.Handle(wire.OpUtimensFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		atime, mtime := d.I64(), d.I64()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		return s.Utimens(dir, name, atime, mtime), nil
	})
	rs.Handle(wire.OpTruncateFile, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		size := d.U64()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		u, old, bs, st := s.Truncate(dir, name, size)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().UUID(u).U64(old).U32(bs).Bytes()
	})
	rs.Handle(wire.OpUpdateSize, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		size := d.U64()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.touchFile(dir, name)
		return s.UpdateSize(dir, name, size), nil
	})
	rs.Handle(wire.OpReaddirFiles, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir := d.UUID()
		cursor := d.Str()
		limit := d.U32()
		var skip uint32
		if d.Remaining() > 0 { // optional trailing page offset (batched paging)
			skip = d.U32()
		}
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(dir.String())
		ents, remaining, st := s.ReaddirFilesAt(dir, cursor, int(skip), int(limit))
		if st != wire.StatusOK {
			return st, nil
		}
		e := wire.NewEnc().U32(uint32(len(ents))).Bool(remaining > 0)
		for _, ent := range ents {
			e.Str(ent.Name).UUID(ent.UUID)
		}
		// Trailing exact remaining count (newer clients size prefetch
		// batches from it; older ones ignore it).
		e.U32(uint32(remaining))
		return wire.StatusOK, e.Bytes()
	})
	rs.Handle(wire.OpDirHasFiles, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir := d.UUID()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(dir.String())
		return wire.StatusOK, wire.NewEnc().Bool(s.DirHasFiles(dir)).Bytes()
	})
	rs.Handle(wire.OpRemoveDirFiles, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir := d.UUID()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(dir.String())
		removed := s.RemoveDirFiles(dir)
		e := wire.NewEnc().U32(uint32(len(removed)))
		for _, u := range removed {
			e.UUID(u)
		}
		return wire.StatusOK, e.Bytes()
	})
	s.attachMigration(rs)
}
