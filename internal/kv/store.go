// Package kv implements the key-value store engines LocoFS metadata servers
// run on — the role Kyoto Cabinet plays in the paper.
//
// Two engines are provided behind a common Store interface:
//
//   - HashStore: a sharded hash table, the analog of Kyoto Cabinet's HashDB.
//     Fast point operations, no key ordering.
//   - BTreeStore: a B+ tree, the analog of Kyoto Cabinet's TreeDB. Keys are
//     kept in byte order, enabling ordered scans and the prefix-range move
//     that makes directory rename cheap (§3.4.3).
//
// Both engines support the paper's serialization-free access (§3.3.3):
// PatchInPlace overwrites a fixed-offset field inside a stored value without
// reading, decoding, or rewriting the rest, and AppendValue extends a value
// (used for concatenated dirent lists) without copying it out first.
package kv

import (
	"hash/maphash"
	"sync"
)

// Store is the interface both engines implement. Keys and values are byte
// strings; implementations must not retain or mutate caller-provided slices
// and must not expose internal storage (Get returns a copy).
type Store interface {
	// Get returns a copy of the value stored under key.
	Get(key []byte) ([]byte, bool)
	// Put stores value under key, replacing any prior value.
	Put(key, value []byte)
	// Delete removes key and reports whether it was present.
	Delete(key []byte) bool
	// PatchInPlace overwrites len(data) bytes at byte offset off of the
	// value stored under key. It reports false if the key is absent or the
	// patch does not fit inside the existing value.
	PatchInPlace(key []byte, off int, data []byte) bool
	// ReadAt copies the value bytes [off, off+len(buf)) into buf, returning
	// false if the key is absent or the range is out of bounds. It is the
	// read-side counterpart of PatchInPlace: a single field can be fetched
	// without materializing the whole value.
	ReadAt(key []byte, off int, buf []byte) bool
	// AppendValue appends data to the value under key, creating the key
	// with value == data if absent.
	AppendValue(key, data []byte)
	// Len returns the number of stored keys.
	Len() int
	// ForEach visits every record in unspecified order until fn returns
	// false. The callback must not modify the store.
	ForEach(fn func(key, value []byte) bool)
}

// Ordered is implemented by engines that keep keys sorted.
type Ordered interface {
	Store
	// AscendRange visits records with start <= key < end in key order
	// until fn returns false. A nil end means "to the last key".
	AscendRange(start, end []byte, fn func(key, value []byte) bool)
	// AscendPrefix visits records whose key has the given prefix, in order.
	AscendPrefix(prefix []byte, fn func(key, value []byte) bool)
	// MovePrefix rewrites every key beginning with oldPrefix to begin with
	// newPrefix instead, returning the number of records moved. Because
	// keys are sorted, the affected records are physically adjacent — this
	// is the TreeDB property the paper's d-rename optimization exploits.
	MovePrefix(oldPrefix, newPrefix []byte) int
}

// shardCount must be a power of two.
const shardCount = 64

// HashStore is a sharded in-memory hash table keyed by byte strings.
// It is safe for concurrent use.
type HashStore struct {
	seed   maphash.Seed
	shards [shardCount]hashShard
}

type hashShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewHashStore returns an empty HashStore.
func NewHashStore() *HashStore {
	s := &HashStore{seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *HashStore) shard(key []byte) *hashShard {
	h := maphash.Bytes(s.seed, key)
	return &s.shards[h&(shardCount-1)]
}

// Get returns a copy of the value stored under key.
func (s *HashStore) Get(key []byte) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[string(key)]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	sh.mu.RUnlock()
	return out, true
}

// Put stores value under key, replacing any prior value.
func (s *HashStore) Put(key, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shard(key)
	sh.mu.Lock()
	sh.m[string(key)] = v
	sh.mu.Unlock()
}

// Delete removes key and reports whether it was present.
func (s *HashStore) Delete(key []byte) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	_, ok := sh.m[string(key)]
	if ok {
		delete(sh.m, string(key))
	}
	sh.mu.Unlock()
	return ok
}

// PatchInPlace overwrites a byte range of the stored value without copying
// the value out or rewriting it.
func (s *HashStore) PatchInPlace(key []byte, off int, data []byte) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[string(key)]
	if !ok || off < 0 || off+len(data) > len(v) {
		return false
	}
	copy(v[off:], data)
	return true
}

// ReadAt copies a byte range of the stored value into buf.
func (s *HashStore) ReadAt(key []byte, off int, buf []byte) bool {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[string(key)]
	if !ok || off < 0 || off+len(buf) > len(v) {
		return false
	}
	copy(buf, v[off:])
	return true
}

// AppendValue appends data to the value under key, creating it if absent.
func (s *HashStore) AppendValue(key, data []byte) {
	sh := s.shard(key)
	sh.mu.Lock()
	v := sh.m[string(key)]
	nv := make([]byte, len(v)+len(data))
	copy(nv, v)
	copy(nv[len(v):], data)
	sh.m[string(key)] = nv
	sh.mu.Unlock()
}

// Len returns the number of stored keys.
func (s *HashStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// ForEach visits every record in unspecified order. A full scan over a hash
// store is exactly the cost the paper's Fig 14 charges to hash-mode rename.
func (s *HashStore) ForEach(fn func(key, value []byte) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !fn([]byte(k), v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

var (
	_ Store = (*HashStore)(nil)
)
