package chash

import (
	"fmt"
	"testing"
)

func TestLocateDeterministic(t *testing.T) {
	r := NewRing(0, 0, 1, 2, 3)
	key := []byte("dir-uuid+file-name")
	first := r.Locate(key)
	for i := 0; i < 100; i++ {
		if got := r.Locate(key); got != first {
			t.Fatalf("Locate not deterministic: %d then %d", first, got)
		}
	}
}

func TestLocateCoversAllServers(t *testing.T) {
	r := NewRing(0, 0, 1, 2, 3)
	hits := map[int]int{}
	for i := 0; i < 10000; i++ {
		hits[r.Locate([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	for id := 0; id < 4; id++ {
		if hits[id] == 0 {
			t.Errorf("server %d received no keys", id)
		}
	}
}

func TestBalance(t *testing.T) {
	const servers = 8
	ids := make([]int, servers)
	for i := range ids {
		ids[i] = i
	}
	r := NewRing(512, ids...)
	hits := make([]int, servers)
	const keys = 100000
	for i := 0; i < keys; i++ {
		hits[r.Locate([]byte(fmt.Sprintf("file-%d", i)))]++
	}
	mean := keys / servers
	for id, h := range hits {
		if h < mean/2 || h > mean*2 {
			t.Errorf("server %d has %d keys; mean %d — ring badly imbalanced", id, h, mean)
		}
	}
}

func TestMinimalMovementOnAdd(t *testing.T) {
	r := NewRing(DefaultVirtualNodes, 0, 1, 2, 3)
	const keys = 20000
	before := make([]int, keys)
	for i := range before {
		before[i] = r.Locate([]byte(fmt.Sprintf("k%d", i)))
	}
	r.Add(4)
	moved := 0
	for i := range before {
		if r.Locate([]byte(fmt.Sprintf("k%d", i))) != before[i] {
			moved++
		}
	}
	// Ideal movement is 1/5 of keys; allow generous slack.
	if moved > keys/3 {
		t.Errorf("adding one server moved %d/%d keys (> 1/3)", moved, keys)
	}
	if moved == 0 {
		t.Error("adding a server moved no keys at all")
	}
}

func TestRemoveServer(t *testing.T) {
	r := NewRing(0, 0, 1, 2)
	r.Remove(1)
	if got := r.Servers(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Servers after remove = %v", got)
	}
	for i := 0; i < 1000; i++ {
		if id := r.Locate([]byte(fmt.Sprintf("k%d", i))); id == 1 {
			t.Fatal("removed server still receives keys")
		}
	}
	r.Remove(1) // no-op
	if r.Size() != 2 {
		t.Errorf("Size = %d", r.Size())
	}
}

func TestAddIdempotent(t *testing.T) {
	r := NewRing(16, 5)
	r.Add(5)
	if r.Size() != 1 {
		t.Errorf("Size = %d after duplicate Add", r.Size())
	}
}

func TestEpochAndClone(t *testing.T) {
	r := NewRing(0, 0, 1, 2, 3)
	if r.Epoch() != 0 {
		t.Errorf("fresh ring epoch = %d, want 0", r.Epoch())
	}
	r.SetEpoch(7)
	c := r.Clone()
	if c.Epoch() != 7 {
		t.Errorf("clone epoch = %d, want 7", c.Epoch())
	}
	if got := c.Servers(); len(got) != 4 {
		t.Fatalf("clone servers = %v", got)
	}
	// Mutating the clone must not affect the original.
	c.Add(4)
	c.SetEpoch(8)
	if r.Size() != 4 || r.Epoch() != 7 {
		t.Errorf("original mutated by clone: size=%d epoch=%d", r.Size(), r.Epoch())
	}
	// Identical membership ⇒ identical placement.
	key := []byte("dir-uuid+file-name")
	c2 := r.Clone()
	if r.Locate(key) != c2.Locate(key) {
		t.Error("clone places keys differently")
	}
}

func TestMovedKeysFraction(t *testing.T) {
	old := NewRing(DefaultVirtualNodes, 0, 1, 2, 3)
	next := old.Clone()
	next.Add(4)
	const n = 20000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%d", i))
	}
	moved := MovedKeys(old, next, keys)
	// Ideal is 1/5 of keys; allow generous slack either way.
	if len(moved) == 0 || len(moved) > n/3 {
		t.Errorf("MovedKeys moved %d/%d keys, want ≈%d", len(moved), n, n/5)
	}
	// Every moved key must be owned by the new server (add case), and every
	// moved index must agree with Moved.
	for _, i := range moved {
		if !Moved(old, next, keys[i]) {
			t.Fatalf("MovedKeys returned index %d but Moved reports false", i)
		}
		if next.Locate(keys[i]) != 4 {
			t.Fatalf("key %d moved to server %d, not the added server", i, next.Locate(keys[i]))
		}
	}
}

func TestLocateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Locate on empty ring did not panic")
		}
	}()
	NewRing(0).Locate([]byte("k"))
}
