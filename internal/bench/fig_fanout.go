package bench

import (
	"fmt"
	"sort"
	"time"

	"locofs/internal/client"
	"locofs/internal/core"
)

// Fan-out client modes compared by FigFanOut, in column order.
const (
	modeSerial   = "serial"   // one RPC at a time (pre-fan-out baseline)
	modeParallel = "parallel" // bounded fan-out, one RPC per page
	modeBatched  = "batched"  // fan-out + wire.OpBatch paging/lookup fusion
)

// fanOutServers is the FMS-count sweep: the environment's server scale
// points, always including the paper's 8-server configuration (the
// acceptance point for the parallel-vs-serial comparison).
func fanOutServers(env Env) []int {
	out := append([]int(nil), env.Servers...)
	has8 := false
	for _, n := range out {
		has8 = has8 || n == 8
	}
	if !has8 {
		out = append(out, 8)
	}
	sort.Ints(out)
	return out
}

// FigFanOut measures the multi-server metadata hot paths — readdir (DMS +
// every FMS holds a slice of the listing) and rmdir (every FMS must be
// probed for emptiness) — under three client configurations: serial RPCs,
// parallel bounded fan-out, and fan-out plus wire-level batch RPCs. Virtual
// latency comes from client.Cost deltas, so the table shows exactly how the
// modeled time scales with FMS count.
//
// Shape to look for: serial readdir/rmdir grow linearly with FMS count
// (one round trip per server), while the parallel columns stay nearly flat
// — the fan-out overlaps the per-server round trips, so latency tracks the
// slowest server instead of the sum. Batching additionally fuses the cold
// lookup with the first directory page and packs paging round trips.
func FigFanOut(env Env) (*Table, error) {
	t := &Table{
		Title: "Fan-out: readdir/rmdir virtual latency vs #file metadata servers",
		Note: fmt.Sprintf("modeled link RTT = %v; dir with %d files; latency per op in virtual time",
			env.Link.RTT, fanOutWidth(env)),
		Headers: []string{"FMS",
			"readdir " + modeSerial, "readdir " + modeParallel, "readdir " + modeBatched, "rd-spdup",
			"rmdir " + modeSerial, "rmdir " + modeParallel, "rm-spdup"},
	}
	for _, n := range fanOutServers(env) {
		res, err := fanOutPoint(env, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n),
			fmtUS(res.readdir[modeSerial]), fmtUS(res.readdir[modeParallel]), fmtUS(res.readdir[modeBatched]),
			fmtRatio(ratio(res.readdir[modeSerial], res.readdir[modeParallel])),
			fmtUS(res.rmdir[modeSerial]), fmtUS(res.rmdir[modeParallel]),
			fmtRatio(ratio(res.rmdir[modeSerial], res.rmdir[modeParallel])))
	}
	return t, nil
}

// fanOutWidth is the listing width: wide enough that a single FMS holds
// several ReaddirPageSize pages (so batched paging has pages to pack at the
// low end of the sweep), and fixed across the sweep so the scaling columns
// compare like with like.
func fanOutWidth(env Env) int {
	return 2*client.ReaddirPageSize + env.LatItems
}

// fanOutResult holds one sweep point's per-mode virtual latencies.
type fanOutResult struct {
	readdir map[string]time.Duration
	rmdir   map[string]time.Duration
}

// fanOutPoint runs the three client modes against one cluster of n FMSes.
func fanOutPoint(env Env, n int) (*fanOutResult, error) {
	cluster, err := core.Start(core.Options{
		FMSCount:  n,
		Link:      env.Link,
		CostModel: &core.PaperKVCost,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Populate one directory whose listing is spread across every FMS.
	seed, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return nil, err
	}
	if err := seed.Mkdir("/dir", 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < fanOutWidth(env); i++ {
		if err := seed.Create(fmt.Sprintf("/dir/f-%06d", i), 0o644); err != nil {
			return nil, err
		}
	}
	seed.Close()

	res := &fanOutResult{
		readdir: map[string]time.Duration{},
		rmdir:   map[string]time.Duration{},
	}
	modes := []struct {
		name string
		cfg  core.ClientConfig
	}{
		{modeSerial, core.ClientConfig{SerialFanOut: true, DisableBatchRPC: true}},
		{modeParallel, core.ClientConfig{DisableBatchRPC: true}},
		{modeBatched, core.ClientConfig{}},
	}
	for i, m := range modes {
		c, err := cluster.NewClient(m.cfg)
		if err != nil {
			return nil, err
		}
		// Warm the directory cache so the measurements isolate the
		// fan-out itself rather than the cold path resolution.
		if _, err := c.StatDir("/dir"); err != nil {
			return nil, err
		}
		before := c.Cost()
		if _, err := c.Readdir("/dir"); err != nil {
			return nil, err
		}
		res.readdir[m.name] = c.Cost() - before

		// Rmdir of an empty directory: the cost is the emptiness probe
		// sweep across every FMS plus the DMS removal.
		empty := fmt.Sprintf("/gone-%d", i)
		if err := c.Mkdir(empty, 0o755); err != nil {
			return nil, err
		}
		before = c.Cost()
		if err := c.Rmdir(empty); err != nil {
			return nil, err
		}
		res.rmdir[m.name] = c.Cost() - before
		c.Close()
	}
	return res, nil
}

// ratio returns serial/parallel as a speedup factor.
func ratio(serial, parallel time.Duration) float64 {
	if parallel <= 0 {
		return 0
	}
	return float64(serial) / float64(parallel)
}
