package netsim

import (
	"bufio"
	"net"
	"sync"
	"time"

	"locofs/internal/wire"
)

// DeadlineSender is the optional Conn extension for transports that can
// bound how long one send may block (real sockets whose kernel buffers are
// full because the peer hung). The RPC client uses it when a per-call
// timeout is configured; transports without it (the in-process pipes, whose
// sends never block indefinitely) are simply sent to without a bound.
type DeadlineSender interface {
	// SendDeadline is Send with an upper bound on blocking time. A zero
	// timeout means no bound.
	SendDeadline(m *wire.Msg, timeout time.Duration) error
}

// tcpConn adapts a net.Conn to the message Conn interface using the wire
// framing. Sends are serialized by a mutex so multiple goroutines may reply
// on one connection.
type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	wm sync.Mutex
	bw *bufio.Writer
}

// NewTCPConn wraps an established net.Conn in the message framing.
func NewTCPConn(c net.Conn) Conn {
	return &tcpConn{c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 64<<10)}
}

// Send writes one framed message.
func (t *tcpConn) Send(m *wire.Msg) error {
	return t.SendDeadline(m, 0)
}

// SendDeadline writes one framed message, bounding the socket write by
// timeout (zero = unbounded). The write deadline is set and cleared under
// the send mutex, so concurrent callers with different timeouts do not
// clobber each other's bounds.
func (t *tcpConn) SendDeadline(m *wire.Msg, timeout time.Duration) error {
	t.wm.Lock()
	defer t.wm.Unlock()
	if timeout > 0 {
		t.c.SetWriteDeadline(time.Now().Add(timeout))
		defer t.c.SetWriteDeadline(time.Time{})
	}
	if err := wire.WriteMsg(t.bw, m); err != nil {
		return err
	}
	return t.bw.Flush()
}

// Recv reads one framed message.
func (t *tcpConn) Recv() (*wire.Msg, error) {
	return wire.ReadMsg(t.br)
}

// Close closes the underlying socket.
func (t *tcpConn) Close() error { return t.c.Close() }

// TCPListener adapts a net.Listener to the message Listener interface.
type TCPListener struct{ L net.Listener }

// ListenTCP starts a TCP listener on addr ("host:port", ":0" for ephemeral).
func ListenTCP(addr string) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPListener{L: l}, nil
}

// Accept waits for an inbound connection.
func (l *TCPListener) Accept() (Conn, error) {
	c, err := l.L.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

// Close stops the listener.
func (l *TCPListener) Close() error { return l.L.Close() }

// Addr returns the bound address.
func (l *TCPListener) Addr() string { return l.L.Addr().String() }

// TCPDialer dials real TCP endpoints.
type TCPDialer struct{}

// Dial opens a framed connection to addr.
func (TCPDialer) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

var (
	_ Listener = (*TCPListener)(nil)
	_ Dialer   = TCPDialer{}
)
