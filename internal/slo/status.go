package slo

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"locofs/internal/telemetry"
)

// OpWindow is one operation's windowed latency summary as exported by a
// server's /debug/slo endpoint. Besides the human-facing quantiles it
// carries the raw log-bucket counts, so the cluster aggregator merges
// distributions exactly (summing buckets and recomputing quantiles) instead
// of averaging percentiles across servers — which is statistically wrong.
type OpWindow struct {
	Op         string   `json:"op"`
	Count      uint64   `json:"count"`
	RatePerSec float64  `json:"rate_per_sec"`
	CoveredSec float64  `json:"covered_s"`
	P50Sec     float64  `json:"p50_s"`
	P95Sec     float64  `json:"p95_s"`
	P99Sec     float64  `json:"p99_s"`
	MaxSec     float64  `json:"max_s"`
	MeanSec    float64  `json:"mean_s"`
	SumSec     float64  `json:"sum_s"`
	Buckets    []uint64 `json:"buckets,omitempty"`
}

// opWindowFrom summarizes one windowed snapshot.
func opWindowFrom(op string, win telemetry.WindowedSnapshot) OpWindow {
	m := win.Merged
	ow := OpWindow{
		Op:         op,
		Count:      m.Count,
		RatePerSec: win.Rate(),
		CoveredSec: win.Covered.Seconds(),
		P50Sec:     m.Quantile(0.50).Seconds(),
		P95Sec:     m.Quantile(0.95).Seconds(),
		P99Sec:     m.Quantile(0.99).Seconds(),
		MaxSec:     m.Max.Seconds(),
		MeanSec:    m.Mean().Seconds(),
		SumSec:     m.Sum.Seconds(),
		Buckets:    TrimBuckets(m.Buckets[:]),
	}
	return ow
}

// mergeOpWindows combines the same op observed on several servers.
func mergeOpWindows(wins []OpWindow) OpWindow {
	out := wins[0]
	h := HistFromBuckets(out.Buckets, out.SumSec, out.MaxSec)
	for _, w := range wins[1:] {
		out.Count += w.Count
		if w.CoveredSec > out.CoveredSec {
			out.CoveredSec = w.CoveredSec
		}
		h = mergeHist(h, HistFromBuckets(w.Buckets, w.SumSec, w.MaxSec))
	}
	out.P50Sec = h.Quantile(0.50).Seconds()
	out.P95Sec = h.Quantile(0.95).Seconds()
	out.P99Sec = h.Quantile(0.99).Seconds()
	out.MaxSec = h.Max.Seconds()
	out.MeanSec = h.Mean().Seconds()
	out.SumSec = h.Sum.Seconds()
	out.Buckets = TrimBuckets(h.Buckets[:])
	out.RatePerSec = 0
	if out.CoveredSec > 0 {
		out.RatePerSec = float64(out.Count) / out.CoveredSec
	}
	return out
}

// HotEntry is one hot key reported by a server's TopK sketch.
type HotEntry struct {
	Source string `json:"source"`
	Key    string `json:"key"`
	Count  uint64 `json:"count"`
}

// AnomalyState is one flight-recorder rule's most recent firing state, as
// carried by a server's status and merged into the cluster view. Defined
// here (not in internal/flight) so slo stays the bottom of the status
// dependency graph: flight imports slo, never the reverse.
type AnomalyState struct {
	Source string `json:"source,omitempty"` // emitting process ("" until merged)
	Rule   string `json:"rule"`
	Count  uint64 `json:"count"`   // lifetime firings of this rule
	LastNS int64  `json:"last_ns"` // unix ns of the most recent firing
	Detail string `json:"detail,omitempty"`
}

// ServerStatus is one process's health snapshot: identity, windowed per-op
// latency for each metric family, SLO evaluation, cumulative counters and
// gauges, and its hottest keys. It is the JSON body of /debug/slo and the
// unit the cluster aggregator merges.
type ServerStatus struct {
	Server         string  `json:"server"`
	Version        string  `json:"version"`
	GoVersion      string  `json:"go_version"`
	UptimeSec      float64 `json:"uptime_s"`
	Epoch          uint64  `json:"epoch,omitempty"`
	WindowWidthSec float64 `json:"window_width_s"`
	WindowNum      int     `json:"window_num"`

	Service []OpWindow `json:"service,omitempty"` // handler service time per op
	Queue   []OpWindow `json:"queue,omitempty"`   // queue wait per op
	RTT     []OpWindow `json:"rtt,omitempty"`     // client round trips per op

	SLO       []ClassStatus      `json:"slo,omitempty"`
	Counters  map[string]float64 `json:"counters,omitempty"`
	Hot       []HotEntry         `json:"hot,omitempty"`
	Anomalies []AnomalyState     `json:"anomalies,omitempty"`

	// Err is set by the aggregator when this server could not be scraped;
	// a server never reports it about itself.
	Err string `json:"err,omitempty"`
}

// CollectOptions parameterize Collect.
type CollectOptions struct {
	// Server names the process (e.g. "fms-2"); "" falls back to the
	// registry's server base label if present.
	Server string
	// Epoch is the membership epoch the process currently holds (0 = not
	// membership-aware).
	Epoch uint64
	// Objectives evaluated against the registry (nil = ServerObjectives).
	Objectives []Objective
	// Hot carries the process's TopK entries, already flattened.
	Hot []HotEntry
	// Anomalies carries the process's flight-recorder rule state.
	Anomalies []AnomalyState
}

// Collect builds a ServerStatus from one process's registry.
func Collect(reg *telemetry.Registry, opts CollectOptions) *ServerStatus {
	st := &ServerStatus{
		Server:    opts.Server,
		Version:   telemetry.Version,
		GoVersion: runtime.Version(),
		UptimeSec: telemetry.Uptime().Seconds(),
		Epoch:     opts.Epoch,
		Hot:       opts.Hot,
		Anomalies: opts.Anomalies,
	}
	cfg := reg.Window()
	st.WindowWidthSec = cfg.Width.Seconds()
	st.WindowNum = cfg.Num

	for _, wm := range reg.WindowMetrics() {
		op := telemetry.LabelValue(wm.Labels, "op")
		if st.Server == "" {
			if s := telemetry.LabelValue(wm.Labels, "server"); s != "" {
				st.Server = s
			}
		}
		ow := opWindowFrom(op, wm.Win)
		switch wm.Name {
		case MetricService:
			st.Service = append(st.Service, ow)
		case MetricQueue:
			st.Queue = append(st.Queue, ow)
		case MetricRTT:
			st.RTT = append(st.RTT, ow)
		}
	}

	st.SLO = NewTracker(reg, opts.Objectives).Eval()

	st.Counters = make(map[string]float64)
	for _, m := range reg.Snapshot().Metrics {
		if m.Kind == telemetry.KindHistogram {
			continue
		}
		// The synthetic per-window gauges are redundant with the OpWindow
		// sections (and carry quantiles, which must not be summed).
		if strings.Contains(m.Name, "_window") {
			continue
		}
		st.Counters[m.Name+m.Labels] = m.Value
	}
	return st
}

// ClusterStatus is the merged, cluster-wide health snapshot served by
// /debug/cluster: every reachable server's status, cluster-level per-op
// windows and SLO classes recomputed from summed buckets, epoch agreement
// across the membership-aware processes, and the peers that failed to
// scrape.
type ClusterStatus struct {
	AsOf           time.Time          `json:"as_of"`
	Epoch          uint64             `json:"epoch"`
	EpochAgreement bool               `json:"epoch_agreement"`
	Servers        []*ServerStatus    `json:"servers"`
	Unreachable    []string           `json:"unreachable,omitempty"`
	Service        []OpWindow         `json:"service,omitempty"`
	RTT            []OpWindow         `json:"rtt,omitempty"`
	SLO            []ClassStatus      `json:"slo,omitempty"`
	Counters       map[string]float64 `json:"counters,omitempty"`
	Hot            []HotEntry         `json:"hot,omitempty"`
	Anomalies      []AnomalyState     `json:"anomalies,omitempty"`
}

// MergeCluster folds per-server statuses into one cluster view. Statuses
// are sorted by server name; unreachable lists servers whose scrape failed
// (their partial identity may still appear in Servers with Err set, if the
// caller chose to include them).
func MergeCluster(statuses []*ServerStatus, unreachable []string) *ClusterStatus {
	cs := &ClusterStatus{
		AsOf:           time.Now(),
		EpochAgreement: true,
		Unreachable:    unreachable,
		Counters:       make(map[string]float64),
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Server < statuses[j].Server })
	cs.Servers = statuses

	svc := make(map[string][]OpWindow)
	rtt := make(map[string][]OpWindow)
	slos := make(map[string][]ClassStatus)
	var sloOrder []string
	epochSeen := false
	for _, st := range statuses {
		if st == nil {
			continue
		}
		if st.Epoch > 0 {
			if epochSeen && st.Epoch != cs.Epoch {
				cs.EpochAgreement = false
			}
			if st.Epoch > cs.Epoch {
				cs.Epoch = st.Epoch
			}
			epochSeen = true
		}
		for _, ow := range st.Service {
			svc[ow.Op] = append(svc[ow.Op], ow)
		}
		for _, ow := range st.RTT {
			rtt[ow.Op] = append(rtt[ow.Op], ow)
		}
		for _, c := range st.SLO {
			k := c.Metric + "/" + c.Class
			if _, ok := slos[k]; !ok {
				sloOrder = append(sloOrder, k)
			}
			slos[k] = append(slos[k], c)
		}
		for k, v := range st.Counters {
			cs.Counters[k] += v
		}
		cs.Hot = append(cs.Hot, st.Hot...)
		for _, a := range st.Anomalies {
			if a.Source == "" {
				a.Source = st.Server
			}
			cs.Anomalies = append(cs.Anomalies, a)
		}
	}
	cs.Service = mergeOpMap(svc)
	cs.RTT = mergeOpMap(rtt)
	for _, k := range sloOrder {
		cs.SLO = append(cs.SLO, MergeClassStatuses(slos[k]))
	}
	sort.Slice(cs.Hot, func(i, j int) bool { return cs.Hot[i].Count > cs.Hot[j].Count })
	sort.Slice(cs.Anomalies, func(i, j int) bool { return cs.Anomalies[i].LastNS > cs.Anomalies[j].LastNS })
	return cs
}

func mergeOpMap(m map[string][]OpWindow) []OpWindow {
	out := make([]OpWindow, 0, len(m))
	for _, wins := range m {
		out = append(out, mergeOpWindows(wins))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// fmtDur renders float seconds compactly for the status tables.
func fmtDur(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// SumCounter totals every label series of one metric name in the merged
// counter map (whose keys are name+canonical-labels).
func (cs *ClusterStatus) SumCounter(name string) float64 {
	var s float64
	for k, v := range cs.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			s += v
		}
	}
	return s
}

// Flight-recorder and lease metric names rendered by Format. Spelled out
// rather than imported (flight and dms both sit above slo in the dependency
// graph).
const (
	metricFlightEvents      = "locofs_flight_events_total"
	metricFlightOverwritten = "locofs_flight_overwritten_total"
	metricFlightBundles     = "locofs_flight_bundles_total"
	metricLeaseGrants       = "locofs_dms_lease_grants_total"
	metricLeaseRecalls      = "locofs_dms_lease_recalls_total"
	metricLeaseSuppressed   = "locofs_dms_lease_recalls_suppressed_total"
	metricDirCachePrefix    = "locofs_client_dircache_"
)

// Format writes the cluster status as the human-readable table behind
// `locofsd status`.
func (cs *ClusterStatus) Format(w io.Writer) {
	fmt.Fprintf(w, "cluster: epoch %d (agreement: %s), %d server(s) up, %d unreachable\n",
		cs.Epoch, yesNo(cs.EpochAgreement), len(cs.Servers), len(cs.Unreachable))
	if len(cs.Unreachable) > 0 {
		fmt.Fprintf(w, "unreachable: %s\n", strings.Join(cs.Unreachable, ", "))
	}
	if ev := cs.SumCounter(metricFlightEvents); ev > 0 || len(cs.Anomalies) > 0 {
		fmt.Fprintf(w, "flight: %.0f event(s) journaled (%.0f overwritten), %.0f bundle(s), %d anomaly rule(s) fired\n",
			ev, cs.SumCounter(metricFlightOverwritten), cs.SumCounter(metricFlightBundles), len(cs.Anomalies))
		for _, a := range cs.Anomalies {
			fmt.Fprintf(w, "  anomaly %s@%s: x%d, last %s  %s\n",
				a.Rule, a.Source, a.Count, time.Unix(0, a.LastNS).Format(time.RFC3339), a.Detail)
		}
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SERVER\tVERSION\tUPTIME\tEPOCH\tOPS(WIN)\tWORST BURN")
	for _, st := range cs.Servers {
		if st == nil {
			continue
		}
		var ops uint64
		for _, ow := range st.Service {
			ops += ow.Count
		}
		for _, ow := range st.RTT {
			ops += ow.Count
		}
		worst := 0.0
		for _, c := range st.SLO {
			if c.BurnRate > worst {
				worst = c.BurnRate
			}
		}
		epoch := "-"
		if st.Epoch > 0 {
			epoch = fmt.Sprintf("%d", st.Epoch)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%.2f\n",
			st.Server, st.Version, time.Duration(st.UptimeSec*float64(time.Second)).Round(time.Second),
			epoch, ops, worst)
	}
	tw.Flush()
	fmt.Fprintln(w)

	if len(cs.SLO) > 0 {
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SLO CLASS\tMETRIC\tTARGET\tP(WIN)\tRATE/S\tBURN\tBUDGET LEFT\tMET")
		for _, c := range cs.SLO {
			fmt.Fprintf(tw, "%s\tp%.0f %s\t%s\t%s\t%.0f\t%.2f\t%.3f\t%s\n",
				c.Class, c.Percentile*100, strings.TrimSuffix(strings.TrimPrefix(c.Metric, "locofs_"), "_seconds"),
				fmtDur(c.TargetSec), fmtDur(c.WindowPSec), c.RatePerSec, c.BurnRate, c.BudgetRemaining, yesNo(c.Met))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	if len(cs.Service) > 0 {
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "OP (service, cluster)\tCOUNT\tRATE/S\tP50\tP95\tP99\tMAX")
		for _, ow := range cs.Service {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%s\t%s\t%s\t%s\n", ow.Op, ow.Count, ow.RatePerSec,
				fmtDur(ow.P50Sec), fmtDur(ow.P95Sec), fmtDur(ow.P99Sec), fmtDur(ow.MaxSec))
		}
		tw.Flush()
	}

	// Lease/cache coherence section: the PR-7 dircache counters summed over
	// every client plus the DMS lease-table totals, so cache health is
	// visible cluster-wide and not just per process.
	hits := cs.SumCounter(metricDirCachePrefix + "hits_total")
	misses := cs.SumCounter(metricDirCachePrefix + "misses_total")
	grants := cs.SumCounter(metricLeaseGrants)
	if hits+misses+grants > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "CACHE/LEASES\tVALUE")
		ratio := 0.0
		if hits+misses > 0 {
			ratio = hits / (hits + misses)
		}
		fmt.Fprintf(tw, "dircache hits\t%.0f (%.0f neg, %.0f list; %.1f%% hit rate)\n",
			hits, cs.SumCounter(metricDirCachePrefix+"neg_hits_total"),
			cs.SumCounter(metricDirCachePrefix+"list_hits_total"), 100*ratio)
		fmt.Fprintf(tw, "dircache misses\t%.0f (%.0f stale)\n",
			misses, cs.SumCounter(metricDirCachePrefix+"stale_total"))
		fmt.Fprintf(tw, "dircache entries\t%.0f (%.0f evictions, %.0f recalls applied)\n",
			cs.SumCounter(metricDirCachePrefix+"entries"),
			cs.SumCounter(metricDirCachePrefix+"evictions_total"),
			cs.SumCounter(metricDirCachePrefix+"recalls_total"))
		fmt.Fprintf(tw, "leases granted\t%.0f\n", grants)
		fmt.Fprintf(tw, "lease recalls\t%.0f published, %.0f suppressed\n",
			cs.SumCounter(metricLeaseRecalls), cs.SumCounter(metricLeaseSuppressed))
		tw.Flush()
	}

	if len(cs.Hot) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "HOT KEY\tSOURCE\tCOUNT")
		n := len(cs.Hot)
		if n > 10 {
			n = 10
		}
		for _, h := range cs.Hot[:n] {
			fmt.Fprintf(tw, "%s\t%s\t%d\n", h.Key, h.Source, h.Count)
		}
		tw.Flush()
	}
}
