// Command locofs-bench regenerates the tables and figures of the LocoFS
// paper's evaluation (SC'17, §4). Each experiment runs the reproduced
// systems on the in-process fabric and prints a table whose rows mirror
// what the paper reports; see EXPERIMENTS.md for the paper-vs-measured
// comparison and the measurement model.
//
// Usage:
//
//	locofs-bench [-quick] [experiment ...]
//
// Experiments: fig1 table1 table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fanout opstats spans faults rebalance slostorm cachestorm
// dmsshard dmscatchup, or "all"
// (default).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"locofs/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (fewer servers, ops)")
	jsonDir := flag.String("json-dir", "", "also write each experiment's table as BENCH_<name>.json under this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: locofs-bench [-quick] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: fig1 table1 table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14\n")
		fmt.Fprintf(os.Stderr, "             ablation-rename ablation-lease ablation-dirent fanout opstats spans faults rebalance slostorm cachestorm dmsshard dmscatchup all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	env := bench.Paper()
	if *quick {
		env = bench.Quick()
	}

	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"fig1", func() (*bench.Table, error) { return bench.Fig1(env) }},
		{"table1", bench.Table1},
		{"table2", func() (*bench.Table, error) { return bench.Table2(env) }},
		{"table3", func() (*bench.Table, error) { return bench.Table3(env) }},
		{"fig6", func() (*bench.Table, error) { return bench.Fig6(env) }},
		{"fig7", func() (*bench.Table, error) { return bench.Fig7(env) }},
		{"fig8", func() (*bench.Table, error) { return bench.Fig8(env) }},
		{"fig9", func() (*bench.Table, error) { return bench.Fig9(env) }},
		{"fig10", func() (*bench.Table, error) { return bench.Fig10(env) }},
		{"fig11", func() (*bench.Table, error) { return bench.Fig11(env) }},
		{"fig12", func() (*bench.Table, error) { return bench.Fig12(env) }},
		{"fig13", func() (*bench.Table, error) { return bench.Fig13(env) }},
		{"fig14", func() (*bench.Table, error) { return bench.Fig14(env) }},
		// Extensions beyond the paper's figures: design-choice ablations.
		{"ablation-rename", func() (*bench.Table, error) { return bench.AblationRenameRatio(env) }},
		{"ablation-lease", func() (*bench.Table, error) { return bench.AblationCacheLease(env) }},
		{"ablation-dirent", func() (*bench.Table, error) { return bench.AblationDirentGranularity(env) }},
		// Fan-out study: serial vs parallel vs batched metadata hot paths.
		{"fanout", func() (*bench.Table, error) { return bench.FigFanOut(env) }},
		// Measured (wall-clock) per-op latency breakdown from the telemetry
		// histograms — the operator's view, not a paper figure.
		{"opstats", func() (*bench.Table, error) { return bench.OpStats(env) }},
		// Fully-traced run: per-op-class span-tree breakdown across the
		// client, the DMS and the FMSes (see internal/trace).
		{"spans", func() (*bench.Table, error) { return bench.Spans(env) }},
		// Fault-injection study: deadlines, retries and the circuit breaker
		// against a blackholed / lossy FMS (see internal/netsim faults).
		{"faults", func() (*bench.Table, error) { return bench.FigFaults(env) }},
		// Elasticity study: online FMS add/remove with key migration under
		// a live workload (see internal/client migrate).
		{"rebalance", func() (*bench.Table, error) { return bench.FigRebalance(env) }},
		// SLO study: windowed quantiles, burn rates and error budgets from
		// the cluster-health aggregator under a zipfian mixed workload
		// (see internal/slo).
		{"slostorm", func() (*bench.Table, error) { return bench.FigSLOStorm(env) }},
		{"cachestorm", func() (*bench.Table, error) { return bench.FigCacheStorm(env) }},
		// Sharded-DMS study: mdtest mix at 1/2/4 partitions plus the
		// same- vs cross-partition rename cost (see DESIGN.md §16).
		{"dmsshard", func() (*bench.Table, error) { return bench.FigDMSShard(env) }},
		// Replication-plane operability study: mutation throughput with a
		// dark follower and during its catch-up, plus the op-log bound.
		{"dmscatchup", func() (*bench.Table, error) { return bench.FigDMSCatchup(env) }},
	}

	want := flag.Args()
	if len(want) == 0 {
		want = []string{"all"}
	}
	selected := map[string]bool{}
	for _, w := range want {
		if w == "all" {
			for _, e := range experiments {
				selected[e.name] = true
			}
			continue
		}
		selected[w] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for w := range selected {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "locofs-bench: unknown experiment %q\n", w)
			flag.Usage()
			os.Exit(2)
		}
	}

	failed := false
	for _, e := range experiments {
		if !selected[e.name] {
			continue
		}
		start := time.Now()
		tbl, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "locofs-bench: %s: %v\n", e.name, err)
			failed = true
			continue
		}
		tbl.Fprint(os.Stdout)
		elapsed := time.Since(start)
		fmt.Printf("(%s completed in %v)\n", e.name, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, e.name, *quick, tbl, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "locofs-bench: %s: %v\n", e.name, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeJSON spools one experiment's table as BENCH_<name>.json — the
// machine-readable twin of the aligned-column text, so CI artifacts can be
// diffed or trended without screen-scraping.
func writeJSON(dir, name string, quick bool, tbl *bench.Table, elapsed time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	out := struct {
		Name      string     `json:"name"`
		Quick     bool       `json:"quick"`
		Title     string     `json:"title"`
		Note      string     `json:"note,omitempty"`
		Headers   []string   `json:"headers"`
		Rows      [][]string `json:"rows"`
		ElapsedMS int64      `json:"elapsed_ms"`
	}{name, quick, tbl.Title, tbl.Note, tbl.Headers, tbl.Rows, elapsed.Milliseconds()}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), append(data, '\n'), 0o644)
}
