package wire

// Member is one FMS in a cluster membership: a stable ring ID (the label
// the consistent-hash ring hashes, so it must never be reused for a
// different server) and the server's transport address.
type Member struct {
	ID   int32
	Addr string
}

// Membership is the epoch-versioned FMS set of the cluster. During a
// membership change the coordinator installs an intermediate membership
// whose Prev holds the outgoing set: while Prev is non-empty the migration
// window is open and clients fall back to the previous owner when the new
// owner does not have a key yet (dual-read). Once every moved key has
// landed, a final membership with an empty Prev closes the window.
type Membership struct {
	Epoch uint64
	FMS   []Member
	Prev  []Member
}

// IDs returns the ring IDs of the current FMS set, in listed order.
func (m *Membership) IDs() []int {
	out := make([]int, len(m.FMS))
	for i, f := range m.FMS {
		out[i] = int(f.ID)
	}
	return out
}

// PrevIDs returns the ring IDs of the previous FMS set, in listed order.
func (m *Membership) PrevIDs() []int {
	out := make([]int, len(m.Prev))
	for i, f := range m.Prev {
		out[i] = int(f.ID)
	}
	return out
}

// EncodeMembership serializes a membership.
// Layout: epoch u64, n u32, n×(id i64, addr str), p u32, p×(id i64, addr str).
func EncodeMembership(m *Membership) []byte {
	e := NewEnc().U64(m.Epoch).U32(uint32(len(m.FMS)))
	for _, f := range m.FMS {
		e.I64(int64(f.ID)).Str(f.Addr)
	}
	e.U32(uint32(len(m.Prev)))
	for _, f := range m.Prev {
		e.I64(int64(f.ID)).Str(f.Addr)
	}
	return e.Bytes()
}

// DecodeMembership parses an EncodeMembership body.
func DecodeMembership(body []byte) (*Membership, error) {
	d := NewDec(body)
	m := &Membership{Epoch: d.U64()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		m.FMS = append(m.FMS, Member{ID: int32(d.I64()), Addr: d.Str()})
	}
	p := d.U32()
	for i := uint32(0); i < p && d.Err() == nil; i++ {
		m.Prev = append(m.Prev, Member{ID: int32(d.I64()), Addr: d.Str()})
	}
	return m, d.Err()
}

// EncodeSetMembership builds an OpSetMembership request: the membership
// plus the receiver's own ring ID within it (-1 for servers that are not
// on the FMS ring, like the DMS or OSS — they track the epoch but never
// answer ownership checks). The coordinator customizes self per
// destination so a server need not guess which listed address is its own.
func EncodeSetMembership(m *Membership, self int) []byte {
	return NewEnc().I64(int64(self)).Blob(EncodeMembership(m)).Bytes()
}

// DecodeSetMembership parses an OpSetMembership request.
func DecodeSetMembership(body []byte) (m *Membership, self int, err error) {
	d := NewDec(body)
	self = int(d.I64())
	blob := d.Blob()
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	m, err = DecodeMembership(blob)
	return m, self, err
}
