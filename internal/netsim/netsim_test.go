package netsim

import (
	"sync"
	"testing"
	"time"

	"locofs/internal/wire"
)

func TestDialAndExchange(t *testing.T) {
	n := NewNetwork(Loopback)
	defer n.Close()
	l, err := n.Listen("dms")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		m, err := conn.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		m.IsResp = true
		conn.Send(m)
	}()
	c, err := n.Dial("dms")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&wire.Msg{ID: 1, Op: wire.OpPing, Body: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || !resp.IsResp {
		t.Errorf("resp = %+v", resp)
	}
	<-done
}

func TestDialUnknownAddr(t *testing.T) {
	n := NewNetwork(Loopback)
	defer n.Close()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Error("Dial to unknown address succeeded")
	}
}

func TestDoubleListenRejected(t *testing.T) {
	n := NewNetwork(Loopback)
	defer n.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Error("second Listen on same address succeeded")
	}
}

func TestLatencyInjection(t *testing.T) {
	rtt := 2 * time.Millisecond
	n := NewNetwork(LinkConfig{RTT: rtt})
	defer n.Close()
	l, _ := n.Listen("s")
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			m.IsResp = true
			conn.Send(m)
		}
	}()
	c, err := n.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	start := time.Now()
	for i := 0; i < rounds; i++ {
		c.Send(&wire.Msg{ID: uint64(i), Op: wire.OpPing})
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < rounds*rtt {
		t.Errorf("%d synchronous round trips took %v, want >= %v", rounds, elapsed, rounds*rtt)
	}
	if elapsed > 10*rounds*rtt {
		t.Errorf("round trips took %v — far above the configured latency", elapsed)
	}
}

func TestBandwidthDelay(t *testing.T) {
	// 1 MB/s: a 10 KB message should take >= 10 ms one way.
	n := NewNetwork(LinkConfig{Bandwidth: 1e6})
	defer n.Close()
	l, _ := n.Listen("s")
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		m, err := conn.Recv()
		if err != nil {
			return
		}
		m.IsResp = true
		m.Body = nil
		conn.Send(m)
	}()
	c, _ := n.Dial("s")
	start := time.Now()
	c.Send(&wire.Msg{ID: 1, Op: wire.OpPing, Body: make([]byte, 10<<10)})
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("10KB at 1MB/s took %v, want >= 10ms", elapsed)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n := NewNetwork(Loopback)
	defer n.Close()
	l, _ := n.Listen("s")
	go l.Accept()
	c, _ := n.Dial("s")
	errc := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPeerCloseDrainsInFlight(t *testing.T) {
	n := NewNetwork(Loopback)
	defer n.Close()
	l, _ := n.Listen("s")
	var server Conn
	accepted := make(chan struct{})
	go func() {
		server, _ = l.Accept()
		close(accepted)
	}()
	c, _ := n.Dial("s")
	<-accepted
	server.Send(&wire.Msg{ID: 9, IsResp: true})
	server.Close()
	m, err := c.Recv()
	if err != nil || m.ID != 9 {
		t.Errorf("in-flight message lost on peer close: %v %v", m, err)
	}
	if _, err := c.Recv(); err != ErrClosed {
		t.Errorf("subsequent Recv = %v, want ErrClosed", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork(Loopback)
	defer n.Close()
	l, _ := n.Listen("s")
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			m.IsResp = true
			conn.Send(m)
		}
	}()
	c, _ := n.Dial("s")
	const senders = 8
	var wg sync.WaitGroup
	sent := make(chan struct{}, senders*50)
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Send(&wire.Msg{ID: uint64(w*1000 + i), Op: wire.OpPing}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				sent <- struct{}{}
			}
		}(w)
	}
	got := 0
	for got < senders*50 {
		if _, err := c.Recv(); err != nil {
			t.Fatalf("recv: %v", err)
		}
		got++
	}
	wg.Wait()
}

func TestNetworkCloseStopsEverything(t *testing.T) {
	n := NewNetwork(Loopback)
	l, _ := n.Listen("s")
	n.Close()
	if _, err := l.Accept(); err != ErrClosed {
		t.Errorf("Accept after network close = %v", err)
	}
	if _, err := n.Dial("s"); err != ErrClosed {
		t.Errorf("Dial after network close = %v", err)
	}
	if _, err := n.Listen("x"); err != ErrClosed {
		t.Errorf("Listen after network close = %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			m.IsResp = true
			conn.Send(m)
		}
	}()
	c, err := TCPDialer{}.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&wire.Msg{ID: 7, Op: wire.OpPing, Body: []byte("over tcp")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil || m.ID != 7 || string(m.Body) != "over tcp" {
		t.Errorf("tcp round trip = %+v, %v", m, err)
	}
}
