package trace

import (
	"sort"
	"sync"
)

// DefaultTopKCapacity is the monitored-key capacity used by NewTopK(0):
// large enough to rank a realistically skewed workload's head, small enough
// that the eviction scan stays trivial.
const DefaultTopKCapacity = 128

// HotKey is one ranked entry of a TopK sketch. Count may overestimate the
// key's true frequency by at most Err (the space-saving guarantee).
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// TopK is a space-saving heavy-hitter sketch (Metwally et al.): it monitors
// at most cap keys; a new key arriving at capacity replaces the current
// minimum, inheriting its count as the overestimation error. Any key whose
// true frequency exceeds total/cap is guaranteed to be monitored, which is
// exactly the hot-directory / hot-file-key skew the introspection plane
// needs to surface. Safe for concurrent use; Touch is one short mutex hold
// (O(1) on monitored keys, O(cap) when evicting).
type TopK struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*hotEntry
	total uint64
}

type hotEntry struct {
	key   string
	count uint64
	err   uint64
}

// NewTopK returns a sketch monitoring at most capacity keys
// (DefaultTopKCapacity when <= 0).
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		capacity = DefaultTopKCapacity
	}
	return &TopK{cap: capacity, m: make(map[string]*hotEntry, capacity)}
}

// Touch counts one occurrence of key.
func (t *TopK) Touch(key string) {
	t.mu.Lock()
	t.total++
	if e := t.m[key]; e != nil {
		e.count++
		t.mu.Unlock()
		return
	}
	if len(t.m) < t.cap {
		t.m[key] = &hotEntry{key: key, count: 1}
		t.mu.Unlock()
		return
	}
	var min *hotEntry
	for _, e := range t.m {
		if min == nil || e.count < min.count {
			min = e
		}
	}
	delete(t.m, min.key)
	// Reuse the evicted entry: the newcomer inherits the minimum count as
	// its upper bound, with the previous count as the error margin.
	min.err = min.count
	min.count++
	min.key = key
	t.m[key] = min
	t.mu.Unlock()
}

// Total returns the number of touches observed.
func (t *TopK) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Top returns up to n entries ranked by count descending (0 = all
// monitored). Ties break by key for stable output.
func (t *TopK) Top(n int) []HotKey {
	t.mu.Lock()
	out := make([]HotKey, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, HotKey{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Reset clears the sketch.
func (t *TopK) Reset() {
	t.mu.Lock()
	t.m = make(map[string]*hotEntry, t.cap)
	t.total = 0
	t.mu.Unlock()
}
