package objstore

import (
	"bytes"
	"testing"

	"locofs/internal/uuid"
	"locofs/internal/wire"
)

var fileU = uuid.New(1, 42)

func TestWriteReadBlock(t *testing.T) {
	s := New(nil)
	data := []byte("hello block")
	if st := s.WriteBlock(fileU, 0, 0, data, 4096); st != wire.StatusOK {
		t.Fatal(st)
	}
	got, st := s.ReadBlock(fileU, 0, 0, uint32(len(data)))
	if st != wire.StatusOK || !bytes.Equal(got, data) {
		t.Errorf("ReadBlock = %q, %v", got, st)
	}
}

func TestPartialWriteMerges(t *testing.T) {
	s := New(nil)
	s.WriteBlock(fileU, 0, 0, []byte("aaaaaaaaaa"), 4096)
	s.WriteBlock(fileU, 0, 3, []byte("BBB"), 4096)
	got, _ := s.ReadBlock(fileU, 0, 0, 10)
	if string(got) != "aaaBBBaaaa" {
		t.Errorf("merged block = %q", got)
	}
}

func TestWriteBeyondBlockRejected(t *testing.T) {
	s := New(nil)
	if st := s.WriteBlock(fileU, 0, 4090, make([]byte, 10), 4096); st != wire.StatusInval {
		t.Errorf("overflow write = %v", st)
	}
}

func TestReadMissingBlockEmpty(t *testing.T) {
	s := New(nil)
	got, st := s.ReadBlock(fileU, 99, 0, 100)
	if st != wire.StatusOK || len(got) != 0 {
		t.Errorf("missing block read = %q, %v", got, st)
	}
}

func TestReadShortAtExtent(t *testing.T) {
	s := New(nil)
	s.WriteBlock(fileU, 0, 0, []byte("12345"), 4096)
	got, _ := s.ReadBlock(fileU, 0, 3, 100)
	if string(got) != "45" {
		t.Errorf("tail read = %q", got)
	}
	got, _ = s.ReadBlock(fileU, 0, 10, 5)
	if len(got) != 0 {
		t.Errorf("past-extent read = %q", got)
	}
}

func TestDeleteFrom(t *testing.T) {
	s := New(nil)
	for blk := uint64(0); blk < 10; blk++ {
		s.WriteBlock(fileU, blk, 0, []byte("x"), 4096)
	}
	other := uuid.New(1, 43)
	s.WriteBlock(other, 0, 0, []byte("y"), 4096)

	if n := s.DeleteFrom(fileU, 4); n != 6 {
		t.Errorf("DeleteFrom(4) = %d, want 6", n)
	}
	if got, _ := s.ReadBlock(fileU, 3, 0, 1); len(got) != 1 {
		t.Error("block 3 vanished")
	}
	if got, _ := s.ReadBlock(fileU, 4, 0, 1); len(got) != 0 {
		t.Error("block 4 survived")
	}
	if n := s.DeleteFrom(fileU, 0); n != 4 {
		t.Errorf("DeleteFrom(0) = %d, want 4", n)
	}
	if got, _ := s.ReadBlock(other, 0, 0, 1); len(got) != 1 {
		t.Error("other file's block deleted")
	}
	if s.BlockCount() != 1 {
		t.Errorf("BlockCount = %d, want 1", s.BlockCount())
	}
}

func TestBlockKeyDistinct(t *testing.T) {
	a := BlockKey(fileU, 1)
	b := BlockKey(fileU, 2)
	c := BlockKey(uuid.New(1, 43), 1)
	if bytes.Equal(a, b) || bytes.Equal(a, c) {
		t.Error("block keys collide")
	}
	if len(a) != uuid.Size+8 {
		t.Errorf("key length = %d", len(a))
	}
}
