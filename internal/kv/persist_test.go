package kv

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestPersistentReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistent(dir, NewBTreeStore())
	if err != nil {
		t.Fatal(err)
	}
	p.Put([]byte("a"), []byte("1"))
	p.Put([]byte("b"), []byte("2222222222"))
	p.Delete([]byte("a"))
	p.PatchInPlace([]byte("b"), 2, []byte("XY"))
	p.AppendValue([]byte("b"), []byte("!"))
	p.MovePrefix([]byte("b"), []byte("c"))
	// Crash: no Close, no Snapshot. Reopen from the WAL alone.
	p2, err := OpenPersistent(dir, NewBTreeStore())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, ok := p2.Get([]byte("a")); ok {
		t.Error("deleted key resurrected")
	}
	if v, ok := p2.Get([]byte("c")); !ok || string(v) != "22XY222222!" {
		t.Errorf("recovered c = %q, %v", v, ok)
	}
	if p2.Len() != 1 {
		t.Errorf("Len = %d", p2.Len())
	}
	p.Close()
}

func TestPersistentSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistent(dir, NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil || wal.Size() != 0 {
		t.Errorf("wal size after snapshot = %v, %v", wal.Size(), err)
	}
	// Mutations after the snapshot land in the fresh WAL.
	p.Put([]byte("post"), []byte("snap"))
	p.Close()

	p2, err := OpenPersistent(dir, NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Len() != 101 {
		t.Errorf("recovered Len = %d, want 101", p2.Len())
	}
	if v, ok := p2.Get([]byte("post")); !ok || string(v) != "snap" {
		t.Errorf("post-snapshot key = %q, %v", v, ok)
	}
}

func TestPersistentAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistent(dir, NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SnapshotEvery = 10
	for i := 0; i < 25; i++ {
		p.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	snap, err := os.Stat(filepath.Join(dir, snapFile))
	if err != nil || snap.Size() == 0 {
		t.Errorf("auto snapshot missing: %v", err)
	}
}

func TestPersistentTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistent(dir, NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	p.Put([]byte("good"), []byte("1"))
	p.Close()
	// Simulate a crash mid-append: garbage partial record at the tail.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	p2, err := OpenPersistent(dir, NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if v, ok := p2.Get([]byte("good")); !ok || string(v) != "1" {
		t.Errorf("good record lost: %q, %v", v, ok)
	}
	if p2.Len() != 1 {
		t.Errorf("Len = %d", p2.Len())
	}
}

func TestPersistentCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	p, _ := OpenPersistent(dir, NewHashStore())
	p.Put([]byte("a"), []byte("1"))
	p.Put([]byte("b"), []byte("2"))
	p.Close()
	// Flip a byte inside the first record's payload: CRC must reject it and
	// replay stops there (prefix integrity, as with a real WAL).
	path := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	p2, err := OpenPersistent(dir, NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Len() != 0 {
		t.Errorf("replayed %d records past a corrupt one", p2.Len())
	}
}

func TestPersistentOrderedPassThrough(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistent(dir, NewBTreeStore())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsOrdered() {
		t.Fatal("btree-backed Persistent not ordered")
	}
	for i := 0; i < 20; i++ {
		p.Put([]byte(fmt.Sprintf("p/%02d", i)), []byte("v"))
	}
	n := 0
	p.AscendPrefix([]byte("p/"), func(k, v []byte) bool { n++; return true })
	if n != 20 {
		t.Errorf("prefix scan = %d", n)
	}
	var first string
	p.AscendRange([]byte("p/05"), []byte("p/10"), func(k, v []byte) bool {
		if first == "" {
			first = string(k)
		}
		return true
	})
	if first != "p/05" {
		t.Errorf("range start = %q", first)
	}
	hp, err := OpenPersistent(t.TempDir(), NewHashStore())
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	if hp.IsOrdered() {
		t.Error("hash-backed Persistent claims ordered")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		{kind: recPut, a: []byte("key"), b: []byte("value")},
		{kind: recDelete, a: []byte("k")},
		{kind: recPatch, a: []byte("k"), b: []byte("xy"), n: 42},
		{kind: recAppend, a: []byte("k"), b: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	for _, want := range recs {
		var got record
		var ok bool
		got, buf, ok = decodeRecord(buf)
		if !ok {
			t.Fatal("decode failed")
		}
		if got.kind != want.kind || string(got.a) != string(want.a) ||
			string(got.b) != string(want.b) || got.n != want.n {
			t.Errorf("got %+v, want %+v", got, want)
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d bytes left over", len(buf))
	}
}
