package dms

import (
	"fmt"
	"testing"

	"locofs/internal/kv"
	"locofs/internal/wire"
)

// TestDMSRestartOnPersistentStore: a DMS restarted over a kv.Persistent
// store recovers its namespace and never re-issues a UUID.
func TestDMSRestartOnPersistentStore(t *testing.T) {
	dir := t.TempDir()
	store, err := kv.OpenPersistent(dir, kv.NewBTreeStore())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Store: store})
	var uuids = map[string]bool{}
	for i := 0; i < 20; i++ {
		u, st := s.Mkdir(fmt.Sprintf("/d%d", i), 0o755, 1, 1)
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		uuids[u.String()] = true
	}
	if _, st := s.Mkdir("/d0/nested", 0o755, 1, 1); st != wire.StatusOK {
		t.Fatal(st)
	}
	if _, st := s.Rename("/d1", "/renamed", 1, 1); st != wire.StatusOK {
		t.Fatal(st)
	}
	// Crash (no clean close), then restart on the same directory.
	store2, err := kv.OpenPersistent(dir, kv.NewBTreeStore())
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Store: store2})
	defer store2.Close()

	if _, st := s2.Stat("/d0/nested", 1, 1); st != wire.StatusOK {
		t.Errorf("nested dir lost across restart: %v", st)
	}
	if _, st := s2.Stat("/renamed", 1, 1); st != wire.StatusOK {
		t.Errorf("renamed dir lost: %v", st)
	}
	if _, st := s2.Stat("/d1", 1, 1); st != wire.StatusNotFound {
		t.Errorf("old rename source resurrected: %v", st)
	}
	// New UUIDs must not collide with recovered ones.
	for i := 0; i < 20; i++ {
		u, st := s2.Mkdir(fmt.Sprintf("/post%d", i), 0o755, 1, 1)
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		if uuids[u.String()] {
			t.Fatalf("restarted DMS re-issued uuid %v", u)
		}
	}
	store.Close()
}
