package locofs

import "locofs/internal/wire"

// Sentinel errors for the failure classes callers branch on. Every error
// returned by a Client (and by the servers' wire responses) matches exactly
// one of these under errors.Is, regardless of the wrapping added along the
// way:
//
//	if err := fs.Create(path, 0o644); errors.Is(err, locofs.ErrExist) {
//		// already created — e.g. by an earlier retried attempt
//	}
//
// ErrUnavailable and ErrDeadlineExceeded are the fault-tolerance layer's
// two outcomes of a server being unreachable: the former when the circuit
// breaker fails the call fast (or the server explicitly refused), the
// latter when an attempt's deadline expired. ErrDeadlineExceeded also
// matches context.DeadlineExceeded, so code written against the standard
// library's convention works unchanged.
var (
	// ErrNotFound: the file or directory does not exist (ENOENT).
	ErrNotFound error = wire.StatusNotFound.Err()
	// ErrExist: the file or directory already exists (EEXIST).
	ErrExist error = wire.StatusExist.Err()
	// ErrNotEmpty: the directory still has entries (ENOTEMPTY).
	ErrNotEmpty error = wire.StatusNotEmpty.Err()
	// ErrPerm: the caller lacks permission (EACCES/EPERM).
	ErrPerm error = wire.StatusPerm.Err()
	// ErrUnavailable: the server is unreachable or refusing work — raised
	// by an open circuit breaker or an explicit EUNAVAIL response.
	ErrUnavailable error = wire.StatusUnavailable.Err()
	// ErrDeadlineExceeded: the per-attempt deadline (DialConfig.OpTimeout)
	// expired before a response arrived.
	ErrDeadlineExceeded error = wire.StatusDeadline.Err()
	// ErrStale: the client's view of the cluster was out of date. It
	// matches both staleness classes the servers raise — ESTALE (an FMS
	// ownership guard refusing a misrouted request during a membership
	// change) and EWRONGPART (a DMS partition refusing a request for a
	// path it does not own under the current partition map) — so callers
	// branch on one sentinel regardless of which routing layer went stale.
	// The client refreshes its membership view or partition map and
	// retries internally; ErrStale surfaces only when those bounded
	// retries are exhausted, which normally indicates churn still in
	// progress. The operation is safe to retry.
	ErrStale error = wire.StatusStale.Err()
	// ErrExpired: the mutation's retry horizon has passed. A DMS partition
	// prunes its dedup-replay records together with its replicated op log
	// (below the group-wide applied watermark); a retry older than that
	// watermark can no longer be told apart from a fresh request, so it is
	// refused without executing — the safe side of at-most-once. Seen only
	// on retries delayed past thousands of subsequent mutations on the same
	// partition; the caller should re-check the target's state rather than
	// retry blindly.
	ErrExpired error = wire.StatusExpired.Err()
)
