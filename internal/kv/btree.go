package kv

import (
	"bytes"
	"sort"
	"sync"
)

// B+ tree fanout. A node holding more than maxEntries keys splits; a
// non-root node holding fewer than minEntries keys borrows or merges.
const (
	maxEntries = 64
	minEntries = maxEntries / 2
)

// BTreeStore is an in-memory B+ tree keyed by byte strings — the analog of
// Kyoto Cabinet's TreeDB. Keys are kept sorted, so records sharing a prefix
// (e.g. every path under one directory) are physically adjacent, which makes
// AscendPrefix and MovePrefix proportional to the size of the affected range
// rather than to the whole store. It is safe for concurrent use.
type BTreeStore struct {
	mu   sync.RWMutex
	root node
	size int
}

type node interface{ isNode() }

type leafNode struct {
	keys [][]byte
	vals [][]byte
	next *leafNode
}

type innerNode struct {
	keys     [][]byte // keys[i] separates children[i] (<) from children[i+1] (>=)
	children []node
}

func (*leafNode) isNode()  {}
func (*innerNode) isNode() {}

// NewBTreeStore returns an empty BTreeStore.
func NewBTreeStore() *BTreeStore {
	return &BTreeStore{root: &leafNode{}}
}

// childIndex returns the index of the child subtree that may contain key.
func (n *innerNode) childIndex(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(key, n.keys[i]) < 0
	})
}

// find returns the leaf and slot for key; ok reports an exact match.
func (t *BTreeStore) find(key []byte) (lf *leafNode, idx int, ok bool) {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *innerNode:
			cur = n.children[n.childIndex(key)]
		case *leafNode:
			i := sort.Search(len(n.keys), func(i int) bool {
				return bytes.Compare(n.keys[i], key) >= 0
			})
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				return n, i, true
			}
			return n, i, false
		}
	}
}

// Get returns a copy of the value stored under key.
func (t *BTreeStore) Get(key []byte) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	lf, i, ok := t.find(key)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(lf.vals[i]))
	copy(out, lf.vals[i])
	return out, true
}

// Put stores value under key, replacing any prior value.
func (t *BTreeStore) Put(key, value []byte) {
	t.mu.Lock()
	t.put(key, value)
	t.mu.Unlock()
}

func (t *BTreeStore) put(key, value []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	sep, right, grew := insertRec(t.root, k, v)
	if grew {
		t.size++
	}
	if right != nil {
		t.root = &innerNode{keys: [][]byte{sep}, children: []node{t.root, right}}
	}
}

// insertRec inserts (key, value) under n. If n splits, it returns the
// separator key and the new right sibling. grew reports whether a new key
// (vs. a replacement) was stored.
func insertRec(n node, key, value []byte) (sep []byte, right node, grew bool) {
	switch n := n.(type) {
	case *leafNode:
		i := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = value
			return nil, nil, false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = value
		if len(n.keys) <= maxEntries {
			return nil, nil, true
		}
		mid := len(n.keys) / 2
		r := &leafNode{
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([][]byte(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = r
		return r.keys[0], r, true
	case *innerNode:
		ci := n.childIndex(key)
		s, r, g := insertRec(n.children[ci], key, value)
		if r != nil {
			n.keys = append(n.keys, nil)
			copy(n.keys[ci+1:], n.keys[ci:])
			n.keys[ci] = s
			n.children = append(n.children, nil)
			copy(n.children[ci+2:], n.children[ci+1:])
			n.children[ci+1] = r
			if len(n.keys) > maxEntries {
				mid := len(n.keys) / 2
				sepUp := n.keys[mid]
				rn := &innerNode{
					keys:     append([][]byte(nil), n.keys[mid+1:]...),
					children: append([]node(nil), n.children[mid+1:]...),
				}
				n.keys = n.keys[:mid:mid]
				n.children = n.children[: mid+1 : mid+1]
				return sepUp, rn, g
			}
		}
		return nil, nil, g
	}
	panic("kv: unknown node type")
}

// Delete removes key and reports whether it was present.
func (t *BTreeStore) Delete(key []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.delete(key)
}

func (t *BTreeStore) delete(key []byte) bool {
	removed := deleteRec(t.root, key)
	if removed {
		t.size--
	}
	// Collapse a root that has become a single-child inner node.
	if r, ok := t.root.(*innerNode); ok && len(r.children) == 1 {
		t.root = r.children[0]
	}
	return removed
}

// deleteRec removes key from the subtree rooted at n. Underflow at n is
// repaired by n's parent (rebalance); the root is allowed to underflow.
func deleteRec(n node, key []byte) bool {
	switch n := n.(type) {
	case *leafNode:
		i := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	case *innerNode:
		ci := n.childIndex(key)
		removed := deleteRec(n.children[ci], key)
		if removed {
			n.rebalance(ci)
		}
		return removed
	}
	panic("kv: unknown node type")
}

// underflown reports whether child c holds fewer than minEntries keys.
func underflown(c node) bool {
	switch c := c.(type) {
	case *leafNode:
		return len(c.keys) < minEntries
	case *innerNode:
		return len(c.keys) < minEntries
	}
	return false
}

// rebalance repairs an underflown child at index ci by borrowing from a
// sibling or merging with one.
func (n *innerNode) rebalance(ci int) {
	child := n.children[ci]
	if !underflown(child) {
		return
	}
	switch c := child.(type) {
	case *leafNode:
		if ci > 0 {
			l := n.children[ci-1].(*leafNode)
			if len(l.keys) > minEntries { // borrow from left
				last := len(l.keys) - 1
				c.keys = append([][]byte{l.keys[last]}, c.keys...)
				c.vals = append([][]byte{l.vals[last]}, c.vals...)
				l.keys = l.keys[:last]
				l.vals = l.vals[:last]
				n.keys[ci-1] = c.keys[0]
				return
			}
		}
		if ci < len(n.children)-1 {
			r := n.children[ci+1].(*leafNode)
			if len(r.keys) > minEntries { // borrow from right
				c.keys = append(c.keys, r.keys[0])
				c.vals = append(c.vals, r.vals[0])
				r.keys = r.keys[1:]
				r.vals = r.vals[1:]
				n.keys[ci] = r.keys[0]
				return
			}
		}
		// merge with a sibling
		if ci > 0 {
			l := n.children[ci-1].(*leafNode)
			l.keys = append(l.keys, c.keys...)
			l.vals = append(l.vals, c.vals...)
			l.next = c.next
			n.removeChild(ci)
		} else {
			r := n.children[ci+1].(*leafNode)
			c.keys = append(c.keys, r.keys...)
			c.vals = append(c.vals, r.vals...)
			c.next = r.next
			n.removeChild(ci + 1)
		}
	case *innerNode:
		if ci > 0 {
			l := n.children[ci-1].(*innerNode)
			if len(l.keys) > minEntries { // rotate right through parent
				c.keys = append([][]byte{n.keys[ci-1]}, c.keys...)
				c.children = append([]node{l.children[len(l.children)-1]}, c.children...)
				n.keys[ci-1] = l.keys[len(l.keys)-1]
				l.keys = l.keys[:len(l.keys)-1]
				l.children = l.children[:len(l.children)-1]
				return
			}
		}
		if ci < len(n.children)-1 {
			r := n.children[ci+1].(*innerNode)
			if len(r.keys) > minEntries { // rotate left through parent
				c.keys = append(c.keys, n.keys[ci])
				c.children = append(c.children, r.children[0])
				n.keys[ci] = r.keys[0]
				r.keys = r.keys[1:]
				r.children = r.children[1:]
				return
			}
		}
		if ci > 0 { // merge into left sibling
			l := n.children[ci-1].(*innerNode)
			l.keys = append(l.keys, n.keys[ci-1])
			l.keys = append(l.keys, c.keys...)
			l.children = append(l.children, c.children...)
			n.removeChild(ci)
		} else { // merge right sibling into c
			r := n.children[ci+1].(*innerNode)
			c.keys = append(c.keys, n.keys[ci])
			c.keys = append(c.keys, r.keys...)
			c.children = append(c.children, r.children...)
			n.removeChild(ci + 1)
		}
	}
}

// removeChild drops children[ci] and its left separator key.
func (n *innerNode) removeChild(ci int) {
	n.children = append(n.children[:ci], n.children[ci+1:]...)
	sep := ci - 1
	if sep < 0 {
		sep = 0
	}
	n.keys = append(n.keys[:sep], n.keys[sep+1:]...)
}

// PatchInPlace overwrites a byte range of the stored value in place.
func (t *BTreeStore) PatchInPlace(key []byte, off int, data []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	lf, i, ok := t.find(key)
	if !ok || off < 0 || off+len(data) > len(lf.vals[i]) {
		return false
	}
	copy(lf.vals[i][off:], data)
	return true
}

// ReadAt copies a byte range of the stored value into buf.
func (t *BTreeStore) ReadAt(key []byte, off int, buf []byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	lf, i, ok := t.find(key)
	if !ok || off < 0 || off+len(buf) > len(lf.vals[i]) {
		return false
	}
	copy(buf, lf.vals[i][off:])
	return true
}

// AppendValue appends data to the value under key, creating it if absent.
func (t *BTreeStore) AppendValue(key, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lf, i, ok := t.find(key)
	if ok {
		v := lf.vals[i]
		nv := make([]byte, len(v)+len(data))
		copy(nv, v)
		copy(nv[len(v):], data)
		lf.vals[i] = nv
		return
	}
	t.put(key, data)
}

// Len returns the number of stored keys.
func (t *BTreeStore) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// firstLeaf returns the leftmost leaf.
func (t *BTreeStore) firstLeaf() *leafNode {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *innerNode:
			cur = n.children[0]
		case *leafNode:
			return n
		}
	}
}

// ForEach visits every record in ascending key order.
func (t *BTreeStore) ForEach(fn func(key, value []byte) bool) {
	t.AscendRange(nil, nil, fn)
}

// AscendRange visits records with start <= key < end in key order. A nil
// start begins at the first key; a nil end continues to the last.
func (t *BTreeStore) AscendRange(start, end []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var lf *leafNode
	var i int
	if start == nil {
		lf, i = t.firstLeaf(), 0
	} else {
		lf, i, _ = t.find(start)
	}
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			if end != nil && bytes.Compare(lf.keys[i], end) >= 0 {
				return
			}
			if !fn(lf.keys[i], lf.vals[i]) {
				return
			}
		}
		lf, i = lf.next, 0
	}
}

// AscendPrefix visits records whose key begins with prefix, in key order.
func (t *BTreeStore) AscendPrefix(prefix []byte, fn func(key, value []byte) bool) {
	t.AscendRange(prefix, PrefixSuccessor(prefix), fn)
}

// MovePrefix rewrites every key beginning with oldPrefix to begin with
// newPrefix. Because keys are sorted the affected records form one
// contiguous range — the whole point of running the DMS on the tree engine.
func (t *BTreeStore) MovePrefix(oldPrefix, newPrefix []byte) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := PrefixSuccessor(oldPrefix)
	type rec struct{ k, v []byte }
	var moved []rec
	lf, i, _ := t.find(oldPrefix)
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			k := lf.keys[i]
			if end != nil && bytes.Compare(k, end) >= 0 {
				goto collectDone
			}
			nk := make([]byte, 0, len(newPrefix)+len(k)-len(oldPrefix))
			nk = append(nk, newPrefix...)
			nk = append(nk, k[len(oldPrefix):]...)
			moved = append(moved, rec{k: nk, v: lf.vals[i]})
		}
		lf, i = lf.next, 0
	}
collectDone:
	for _, r := range moved {
		old := make([]byte, 0, len(oldPrefix)+len(r.k)-len(newPrefix))
		old = append(old, oldPrefix...)
		old = append(old, r.k[len(newPrefix):]...)
		t.delete(old)
	}
	for _, r := range moved {
		t.put(r.k, r.v)
	}
	return len(moved)
}

// PrefixSuccessor returns the smallest key greater than every key having the
// given prefix, or nil if no such key exists (prefix is all 0xFF).
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			out := append([]byte(nil), prefix[:i+1]...)
			out[i]++
			return out
		}
	}
	return nil
}

var (
	_ Store   = (*BTreeStore)(nil)
	_ Ordered = (*BTreeStore)(nil)
)
