package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// TestDoDeadline: a call whose handler outlives the per-call timeout
// returns ETIMEDOUT within the bound instead of blocking on the response.
func TestDoDeadline(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	release := make(chan struct{})
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		<-release
		return wire.StatusOK, nil
	})
	defer close(release)
	l, _ := n.Listen("srv")
	go s.Serve(l)

	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	t0 := time.Now()
	st, _, _, err := c.Do(CallSpec{Op: wire.Op(0x0F00), Timeout: 30 * time.Millisecond})
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("deadline call took %v", d)
	}
	if st != wire.StatusDeadline {
		t.Errorf("status = %v, want ETIMEDOUT", st)
	}
	if !errors.Is(err, wire.StatusDeadline.Err()) {
		t.Errorf("err = %v, want deadline", err)
	}
}

// TestDoDeadlineMissesDoNotPoisonLaterCalls: after a timed-out call, the
// same client still completes fresh calls (the late response for the dead
// request is discarded, not mismatched).
func TestDoDeadlineMissesDoNotPoisonLaterCalls(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	var slow atomic.Bool
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		if slow.Load() {
			time.Sleep(80 * time.Millisecond)
		}
		return wire.StatusOK, []byte("done")
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slow.Store(true)
	if st, _, _, _ := c.Do(CallSpec{Op: wire.Op(0x0F00), Timeout: 10 * time.Millisecond}); st != wire.StatusDeadline {
		t.Fatalf("first call status = %v, want ETIMEDOUT", st)
	}
	slow.Store(false)
	st, body, _, err := c.Do(CallSpec{Op: wire.Op(0x0F00), Timeout: time.Second})
	if err != nil || st != wire.StatusOK || string(body) != "done" {
		t.Fatalf("call after deadline miss = %v %q %v", st, body, err)
	}
}

// TestDedupReplaysFirstExecution: two deliveries of one request id execute
// the handler once; the duplicate is answered from the dedup window with
// the recorded response, and the server counts the hit.
func TestDedupReplaysFirstExecution(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	var execs atomic.Int64
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		execs.Add(1)
		return wire.StatusOK, []byte{byte(execs.Load())}
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := CallSpec{Op: wire.Op(0x0F00), Req: 0xBEEF}
	st1, b1, _, err1 := c.Do(spec)
	st2, b2, _, err2 := c.Do(spec) // same request id: a "retry"
	if err1 != nil || err2 != nil || st1 != wire.StatusOK || st2 != wire.StatusOK {
		t.Fatalf("calls: %v %v %v %v", st1, err1, st2, err2)
	}
	if execs.Load() != 1 {
		t.Errorf("handler executed %d times, want 1", execs.Load())
	}
	if len(b1) != 1 || len(b2) != 1 || b1[0] != b2[0] {
		t.Errorf("duplicate got %v, want replay of %v", b2, b1)
	}
	hits := counterValue(t, reg, MetricDedup)
	if hits != 1 {
		t.Errorf("dedup hits = %d, want 1", hits)
	}
	// A different id executes afresh.
	if _, b3, _, _ := c.Do(CallSpec{Op: wire.Op(0x0F00), Req: 0xCAFE}); len(b3) != 1 || b3[0] != 2 {
		t.Errorf("distinct id replayed: %v", b3)
	}
}

// TestDedupInFlightDuplicateWaits: a duplicate arriving while the first
// execution is still running waits for it and replays the same response,
// instead of executing concurrently.
func TestDedupInFlightDuplicateWaits(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	var execs atomic.Int64
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		execs.Add(1)
		entered <- struct{}{}
		<-release
		return wire.StatusOK, []byte("once")
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := CallSpec{Op: wire.Op(0x0F00), Req: 0xF00D}
	var wg sync.WaitGroup
	results := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, b, _, _ := c.Do(spec)
			results[i] = string(b)
		}(i)
	}
	<-entered // first execution running
	select {
	case <-entered:
		t.Fatal("duplicate executed concurrently")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	if execs.Load() != 1 {
		t.Errorf("handler executed %d times, want 1", execs.Load())
	}
	if results[0] != "once" || results[1] != "once" {
		t.Errorf("results = %q", results)
	}
}

// TestDedupWindowEviction: the FIFO window forgets the oldest completed
// ids, so a very late duplicate re-executes rather than pinning memory
// forever.
func TestDedupWindowEviction(t *testing.T) {
	var w dedupWindow
	e1, dup := w.begin(1)
	if dup {
		t.Fatal("fresh id reported as duplicate")
	}
	e1.complete(wire.StatusOK, nil, 0)
	for i := 2; i <= DedupWindow+1; i++ {
		e, dup := w.begin(uint64(i))
		if dup {
			t.Fatalf("id %d reported as duplicate", i)
		}
		e.complete(wire.StatusOK, nil, 0)
	}
	// id 1 was evicted by the DedupWindow ids that followed it.
	if _, dup := w.begin(1); dup {
		t.Error("evicted id still tracked")
	}
	// A live id is still recognized.
	if _, dup := w.begin(DedupWindow + 1); !dup {
		t.Error("recent id forgotten")
	}
}

// TestDedupWindowInFlightNotEvicted: an entry whose request is still
// executing survives the FIFO overflowing past DedupWindow — evicting it
// would let a concurrent retry re-execute the mutation. The spared
// evictions are counted, and completed neighbors are evicted instead.
func TestDedupWindowInFlightNotEvicted(t *testing.T) {
	var w dedupWindow
	parked, dup := w.begin(1) // in-flight: never completed during the flood
	if dup {
		t.Fatal("fresh id reported as duplicate")
	}
	// Flood the window far past DedupWindow with completed entries.
	for i := 2; i <= 2*DedupWindow; i++ {
		e, dup := w.begin(uint64(i))
		if dup {
			t.Fatalf("id %d reported as duplicate", i)
		}
		e.complete(wire.StatusOK, []byte{byte(i)}, 0)
	}
	// The parked entry must still be tracked: its duplicate must wait and
	// replay, not re-execute.
	got, dup := w.begin(1)
	if !dup {
		t.Fatal("in-flight entry was evicted by the flood")
	}
	if got != parked {
		t.Fatal("duplicate resolved to a different entry")
	}
	if w.InflightSkips() == 0 {
		t.Error("no in-flight eviction skips counted")
	}
	// The window did not balloon: only the one in-flight entry overflows.
	if n := w.size(); n > DedupWindow+1 {
		t.Errorf("window size = %d, want <= %d", n, DedupWindow+1)
	}
	// Once completed, the parked entry's duplicate replays its outcome...
	parked.complete(wire.StatusExist, []byte("first"), 7)
	select {
	case <-got.done:
	default:
		t.Fatal("duplicate's entry not released by complete")
	}
	if got.status != wire.StatusExist || string(got.body) != "first" {
		t.Errorf("replayed outcome = %v %q", got.status, got.body)
	}
	// ...and the entry becomes evictable by further traffic.
	for i := 2 * DedupWindow; i <= 3*DedupWindow+2; i++ {
		e, dup := w.begin(uint64(i))
		if !dup {
			e.complete(wire.StatusOK, nil, 0)
		}
	}
	if _, dup := w.begin(1); dup {
		t.Error("completed entry never evicted")
	}
}

// TestDedupInFlightSkipsEndToEnd: with a server worker parked mid-mutation,
// flooding the dedup window does not evict the parked request's entry; its
// retry replays the recorded response (one execution total) and the skip
// counter surfaces through the server.
func TestDedupInFlightSkipsEndToEnd(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	var execs atomic.Int64
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		execs.Add(1)
		entered <- struct{}{}
		<-release
		return wire.StatusOK, []byte("once")
	})
	s.Handle(wire.Op(0x0F01), func(body []byte) (wire.Status, []byte) {
		return wire.StatusOK, nil
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Park one mutation mid-execution.
	parkedDone := make(chan string, 1)
	go func() {
		_, b, _, _ := c.Do(CallSpec{Op: wire.Op(0x0F00), Req: 0xAAAA})
		parkedDone <- string(b)
	}()
	<-entered
	// Flood the window past DedupWindow with other deduped requests.
	for i := 0; i < DedupWindow+64; i++ {
		if st, _, _, err := c.Do(CallSpec{Op: wire.Op(0x0F01), Req: 0x10000 + uint64(i)}); err != nil || st != wire.StatusOK {
			t.Fatalf("flood call %d: %v %v", i, st, err)
		}
	}
	if s.DedupInflightSkips() == 0 {
		t.Error("server counted no in-flight eviction skips")
	}
	// Retry of the parked request must wait for the original, not re-run.
	retryDone := make(chan string, 1)
	go func() {
		_, b, _, _ := c.Do(CallSpec{Op: wire.Op(0x0F00), Req: 0xAAAA})
		retryDone <- string(b)
	}()
	select {
	case b := <-retryDone:
		t.Fatalf("retry completed while original parked (body %q)", b)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if b := <-parkedDone; b != "once" {
		t.Errorf("original body = %q", b)
	}
	if b := <-retryDone; b != "once" {
		t.Errorf("retry body = %q, want replay", b)
	}
	if execs.Load() != 1 {
		t.Errorf("handler executed %d times, want 1", execs.Load())
	}
}

// counterValue sums one counter metric across label sets.
func counterValue(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	var n uint64
	for _, m := range reg.Snapshot().Metrics {
		if m.Kind == telemetry.KindCounter && m.Name == name {
			n += uint64(m.Value)
		}
	}
	return n
}
